//! Cloud topology construction.
//!
//! Builds the paper's deployment shapes on top of `netsim`:
//!
//! ```text
//!              internet router ── external hosts / NATted power users
//!              /            \
//!   public cloud (EC2)    private cloud (OpenNebula)
//!     router                 router
//!    /  |  \                /  |  \
//!  VM  VM  VM             VM  VM  VM
//! ```
//!
//! Each VM is a full [`netsim::Host`] with a flavor-derived CPU model and
//! its own access link to the cloud router. Clouds attach to the
//! internet router over WAN links; a *hybrid* deployment is simply two
//! clouds whose VMs talk across that WAN — exactly the case HIP secures
//! in §IV-A.

use crate::flavor::Flavor;
use netsim::host::Host;
use netsim::link::{Endpoint, LinkId, LinkParams, NodeId};
use netsim::packet::v4;
use netsim::router::Router;
use netsim::{Sim, SimDuration};
use std::net::IpAddr;

/// Identifies a cloud region within the topology.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CloudId(pub usize);

/// Deployment model of a region (affects defaults only; the semantics —
/// who can reach whom — are identical, as in real IP networks).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CloudKind {
    /// Amazon-EC2-like public IaaS.
    Public,
    /// OpenNebula-like private IaaS.
    Private,
}

/// A launched VM (or external host).
#[derive(Clone, Copy, Debug)]
pub struct VmHandle {
    /// The netsim node.
    pub node: NodeId,
    /// Its (locator) address.
    pub addr: IpAddr,
    /// The access link connecting it to its router.
    pub link: LinkId,
    /// The region it currently runs in (None for external hosts).
    pub cloud: Option<CloudId>,
}

struct CloudRegion {
    #[allow(dead_code)]
    name: String,
    #[allow(dead_code)]
    kind: CloudKind,
    router: NodeId,
    /// 10.<subnet>.0.0/16
    subnet: u8,
    next_host: u16,
    link_params: LinkParams,
}

/// The full multi-cloud topology under construction / in execution.
pub struct CloudTopology {
    /// The simulator (public: experiments run it directly).
    pub sim: Sim,
    internet: NodeId,
    clouds: Vec<CloudRegion>,
    next_external: u8,
    /// WAN parameters between clouds and the internet core.
    pub wan_params: LinkParams,
}

impl CloudTopology {
    /// Creates a topology with an internet core router.
    pub fn new(seed: u64) -> Self {
        let mut sim = Sim::new(seed);
        let internet = sim.world.add_node(Box::new(Router::new("internet")));
        CloudTopology {
            sim,
            internet,
            clouds: Vec::new(),
            next_external: 10,
            wan_params: LinkParams::wan(),
        }
    }

    /// Adds a cloud region, connected to the internet core.
    pub fn add_cloud(&mut self, name: &str, kind: CloudKind) -> CloudId {
        let idx = self.clouds.len();
        let subnet = (idx + 1) as u8;
        let router = self.sim.world.add_node(Box::new(Router::new(&format!("{name}-router"))));
        // WAN link: cloud router iface 0 ↔ internet.
        let internet_iface;
        let cloud_wan_iface;
        let wan = {
            let a = Endpoint { node: router, iface: usize::MAX };
            let b = Endpoint { node: self.internet, iface: usize::MAX };
            self.sim.world.connect(a, b, self.wan_params)
        };
        {
            let r = self.sim.world.node_mut::<Router>(router).expect("router");
            cloud_wan_iface = r.add_iface(wan);
            // Default route toward the internet.
            r.add_route(v4(0, 0, 0, 0), 0, cloud_wan_iface);
        }
        {
            let r = self.sim.world.node_mut::<Router>(self.internet).expect("internet");
            internet_iface = r.add_iface(wan);
            r.add_route(v4(10, subnet, 0, 0), 16, internet_iface);
        }
        // The WAN link endpoints were created with provisional iface
        // indices; patch both sides now that they are allocated.
        self.patch_link_endpoint(wan, self.internet, internet_iface);
        self.patch_link_endpoint(wan, router, cloud_wan_iface);
        self.clouds.push(CloudRegion {
            name: name.to_owned(),
            kind,
            router,
            subnet,
            next_host: 2,
            link_params: LinkParams::datacenter(),
        });
        self.sim.metrics.set_gauge_name("cloud.regions", self.clouds.len() as i64);
        CloudId(idx)
    }

    /// Launches a VM in `cloud` with the given flavor. The host is
    /// created empty; install shims/apps through
    /// [`CloudTopology::host_mut`] before the simulation starts.
    pub fn launch_vm(&mut self, cloud: CloudId, name: &str, flavor: Flavor) -> VmHandle {
        let region = &mut self.clouds[cloud.0];
        let hostno = region.next_host;
        region.next_host += 1;
        let addr = v4(10, region.subnet, (hostno >> 8) as u8, (hostno & 0xff) as u8);
        let mut host = Host::new(name);
        host.core.cpu = flavor.cpu_model();
        let node = self.sim.world.add_node(Box::new(host));
        let (router, params) = (region.router, region.link_params);
        let link = self.sim.world.connect(
            Endpoint { node, iface: 0 },
            Endpoint { node: router, iface: usize::MAX }, // fixed below
            params,
        );
        // Router iface registration (iface index = its table position).
        let iface = {
            let r = self.sim.world.node_mut::<Router>(router).expect("router");
            let iface = r.add_iface(link);
            r.add_route(addr, 32, iface);
            iface
        };
        // Patch the link endpoint with the real iface index.
        self.patch_link_endpoint(link, router, iface);
        self.sim.world.node_mut::<Host>(node).expect("host").core.add_iface(link, vec![addr]);
        let total: i64 = self.clouds.iter().map(|c| (c.next_host - 2) as i64).sum();
        self.sim.metrics.set_gauge_name("cloud.vms", total);
        VmHandle { node, addr, link, cloud: Some(cloud) }
    }

    /// Adds a host on the public internet (client, proxy, Teredo
    /// infrastructure, power-user workstation).
    pub fn add_external_host(&mut self, name: &str, flavor: Flavor) -> VmHandle {
        let n = self.next_external;
        self.next_external += 1;
        let addr = v4(198, 51, 100, n);
        let mut host = Host::new(name);
        host.core.cpu = flavor.cpu_model();
        let node = self.sim.world.add_node(Box::new(host));
        let link = self.sim.world.connect(
            Endpoint { node, iface: 0 },
            Endpoint { node: self.internet, iface: usize::MAX },
            LinkParams::access(),
        );
        let iface = {
            let r = self.sim.world.node_mut::<Router>(self.internet).expect("internet");
            let iface = r.add_iface(link);
            r.add_route(addr, 32, iface);
            iface
        };
        self.patch_link_endpoint(link, self.internet, iface);
        self.sim.world.node_mut::<Host>(node).expect("host").core.add_iface(link, vec![addr]);
        VmHandle { node, addr, link, cloud: None }
    }

    /// Attaches an arbitrary pre-built node (NAT, Teredo relay, RVS...)
    /// to the internet core; returns `(node, link, internet_iface)` and
    /// installs a /32 route for `addr`.
    pub fn attach_infrastructure(
        &mut self,
        node: Box<dyn netsim::Node>,
        addr: IpAddr,
        iface_on_node: usize,
    ) -> (NodeId, LinkId) {
        let node = self.sim.world.add_node(node);
        let link = self.sim.world.connect(
            Endpoint { node, iface: iface_on_node },
            Endpoint { node: self.internet, iface: usize::MAX },
            LinkParams::access(),
        );
        let iface = {
            let r = self.sim.world.node_mut::<Router>(self.internet).expect("internet");
            let iface = r.add_iface(link);
            r.add_route(addr, 32, iface);
            iface
        };
        self.patch_link_endpoint(link, self.internet, iface);
        (node, link)
    }

    fn patch_link_endpoint(&mut self, link: LinkId, node: NodeId, iface: usize) {
        // Links are created before the router interface index is known;
        // rewrite the endpoint once allocated.
        let links = self.sim.world.links_mut();
        let l = &mut links[link.0];
        if l.a.node == node {
            l.a.iface = iface;
        } else {
            l.b.iface = iface;
        }
    }

    /// Mutable access to a VM's host.
    pub fn host_mut(&mut self, vm: VmHandle) -> &mut Host {
        self.sim.world.node_mut::<Host>(vm.node).expect("host")
    }

    /// Immutable access to a VM's host.
    pub fn host(&self, vm: VmHandle) -> &Host {
        self.sim.world.node::<Host>(vm.node).expect("host")
    }

    /// Migrates a VM to another cloud region: detaches its access link,
    /// attaches a new one under the target router, assigns an address in
    /// the target subnet, and returns the new handle. The caller is
    /// responsible for announcing the move (HIP UPDATE via
    /// `Host::shim_command`) — see `cloudsim::migration`.
    pub fn migrate_vm(&mut self, vm: VmHandle, to: CloudId) -> VmHandle {
        let region = &mut self.clouds[to.0];
        let hostno = region.next_host;
        region.next_host += 1;
        let new_addr = v4(10, region.subnet, (hostno >> 8) as u8, (hostno & 0xff) as u8);
        let (router, params) = (region.router, region.link_params);
        let link = self.sim.world.connect(
            Endpoint { node: vm.node, iface: 0 },
            Endpoint { node: router, iface: usize::MAX },
            params,
        );
        let iface = {
            let r = self.sim.world.node_mut::<Router>(router).expect("router");
            let iface = r.add_iface(link);
            r.add_route(new_addr, 32, iface);
            iface
        };
        self.patch_link_endpoint(link, router, iface);
        {
            let host = self.sim.world.node_mut::<Host>(vm.node).expect("host");
            host.core.rebind_iface(0, link);
            host.core.replace_iface_addrs(0, vec![new_addr]);
        }
        self.sim.metrics.add_name("cloud.migrations", 1);
        VmHandle { node: vm.node, addr: new_addr, link, cloud: Some(to) }
    }

    /// The internet core router node (for wiring NATs etc. manually).
    pub fn internet(&self) -> NodeId {
        self.internet
    }

    /// Intra-cloud link parameters for a region (builder-style override
    /// must happen before VMs are launched).
    pub fn set_cloud_link_params(&mut self, cloud: CloudId, params: LinkParams) {
        self.clouds[cloud.0].link_params = params;
    }

    /// Runs the simulation for `d` of virtual time.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.sim.now() + d;
        self.sim.run_until(deadline);
    }

    // ----- fault injection (thin wrappers over `netsim::FaultAction`) -----

    /// Schedules a VM (or external host) crash `after` from now: its
    /// network stack resets and all traffic/timers addressed to it are
    /// discarded until [`CloudTopology::restart_vm`].
    pub fn crash_vm(&mut self, vm: VmHandle, after: SimDuration) {
        self.sim.schedule_fault(after, netsim::FaultAction::NodeCrash(vm.node));
    }

    /// Schedules a restart of a crashed VM `after` from now; its shim
    /// and apps boot afresh (listeners re-open, HIP associations re-run
    /// the base exchange on demand).
    pub fn restart_vm(&mut self, vm: VmHandle, after: SimDuration) {
        self.sim.schedule_fault(after, netsim::FaultAction::NodeRestart(vm.node));
    }

    /// Schedules a loss burst on a VM's access link: for `duration`
    /// starting `after` from now, the link drops packets with
    /// probability `loss`.
    pub fn loss_burst(&mut self, vm: VmHandle, after: SimDuration, loss: f64, duration: SimDuration) {
        self.sim.schedule_fault(after, netsim::FaultAction::BurstStart { link: vm.link, loss });
        self.sim.schedule_fault(after + duration, netsim::FaultAction::BurstEnd { link: vm.link });
    }

    /// Schedules an administrative cut of a VM's access link from
    /// `after` until `after + duration` (a single-VM "partition").
    pub fn cut_vm_link(&mut self, vm: VmHandle, after: SimDuration, duration: SimDuration) {
        self.sim.schedule_fault(after, netsim::FaultAction::LinkDown(vm.link));
        self.sim.schedule_fault(after + duration, netsim::FaultAction::LinkUp(vm.link));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::host::{App, AppEvent, HostApi};
    use netsim::tcp::TcpEvent;
    use netsim::SimTime;
    use std::any::Any;

    struct Echo;
    impl App for Echo {
        fn start(&mut self, api: &mut HostApi) {
            api.tcp_listen(80);
        }
        fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
            if let AppEvent::Tcp(TcpEvent::Data(s)) = ev {
                let d = api.tcp_recv(s);
                api.tcp_send(s, &d);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    struct Client {
        target: IpAddr,
        reply: Vec<u8>,
    }
    impl App for Client {
        fn start(&mut self, api: &mut HostApi) {
            api.tcp_connect(self.target, 80);
        }
        fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
            match ev {
                AppEvent::Tcp(TcpEvent::Connected(s)) => api.tcp_send(s, b"cross-cloud"),
                AppEvent::Tcp(TcpEvent::Data(s)) => self.reply.extend(api.tcp_recv(s)),
                _ => {}
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn vms_in_same_cloud_reach_each_other() {
        let mut topo = CloudTopology::new(1);
        let cloud = topo.add_cloud("ec2", CloudKind::Public);
        let a = topo.launch_vm(cloud, "a", Flavor::Micro);
        let b = topo.launch_vm(cloud, "b", Flavor::Micro);
        topo.host_mut(a).add_app(Box::new(Client { target: b.addr, reply: vec![] }));
        topo.host_mut(b).add_app(Box::new(Echo));
        topo.sim.run_until(SimTime(2_000_000_000));
        assert_eq!(topo.host(a).app::<Client>(0).unwrap().reply, b"cross-cloud");
    }

    #[test]
    fn hybrid_cloud_vms_reach_across_wan() {
        let mut topo = CloudTopology::new(2);
        let public = topo.add_cloud("ec2", CloudKind::Public);
        let private = topo.add_cloud("opennebula", CloudKind::Private);
        let a = topo.launch_vm(public, "a", Flavor::Micro);
        let b = topo.launch_vm(private, "b", Flavor::Large);
        assert_ne!(a.addr, b.addr);
        topo.host_mut(a).add_app(Box::new(Client { target: b.addr, reply: vec![] }));
        topo.host_mut(b).add_app(Box::new(Echo));
        topo.sim.run_until(SimTime(5_000_000_000));
        assert_eq!(topo.host(a).app::<Client>(0).unwrap().reply, b"cross-cloud");
    }

    #[test]
    fn external_host_reaches_cloud_vm() {
        let mut topo = CloudTopology::new(3);
        let cloud = topo.add_cloud("ec2", CloudKind::Public);
        let vm = topo.launch_vm(cloud, "web", Flavor::Micro);
        let ext = topo.add_external_host("laptop", Flavor::Dedicated);
        topo.host_mut(ext).add_app(Box::new(Client { target: vm.addr, reply: vec![] }));
        topo.host_mut(vm).add_app(Box::new(Echo));
        topo.sim.run_until(SimTime(5_000_000_000));
        assert_eq!(topo.host(ext).app::<Client>(0).unwrap().reply, b"cross-cloud");
    }

    #[test]
    fn migration_changes_subnet() {
        let mut topo = CloudTopology::new(4);
        let public = topo.add_cloud("ec2", CloudKind::Public);
        let private = topo.add_cloud("priv", CloudKind::Private);
        let vm = topo.launch_vm(public, "mover", Flavor::Micro);
        let old_addr = vm.addr;
        let moved = topo.migrate_vm(vm, private);
        assert_ne!(moved.addr, old_addr);
        assert_eq!(moved.node, vm.node, "same host, new location");
        // Reachability at the new address.
        let ext = topo.add_external_host("probe", Flavor::Dedicated);
        topo.host_mut(ext).add_app(Box::new(Client { target: moved.addr, reply: vec![] }));
        topo.host_mut(moved).add_app(Box::new(Echo));
        topo.sim.run_until(SimTime(5_000_000_000));
        assert_eq!(topo.host(ext).app::<Client>(0).unwrap().reply, b"cross-cloud");
    }

    #[test]
    fn addresses_are_unique() {
        let mut topo = CloudTopology::new(5);
        let cloud = topo.add_cloud("ec2", CloudKind::Public);
        let mut addrs = std::collections::HashSet::new();
        for i in 0..20 {
            let vm = topo.launch_vm(cloud, &format!("vm{i}"), Flavor::Micro);
            assert!(addrs.insert(vm.addr), "duplicate {}", vm.addr);
        }
    }
}
