//! # cloudsim
//!
//! An IaaS cloud simulator: the substrate standing in for the paper's
//! Amazon EC2 (public) and OpenNebula (private) testbeds.
//!
//! - [`flavor`] — EC2-style instance types (micro/large, compute units)
//! - [`topology`] — multi-cloud topology builder: cloud routers, VM
//!   access links, WAN interconnects, external hosts, infrastructure
//! - [`tenant`] — multi-tenancy registry + HIP isolation firewalls
//! - [`migration`] — cross-subnet VM migration announced over HIP

#![warn(missing_docs)]

pub mod flavor;
pub mod migration;
pub mod tenant;
pub mod topology;

pub use flavor::Flavor;
pub use migration::{migrate_with_hip, MigrationReport};
pub use tenant::{TenantId, TenantRegistry};
pub use topology::{CloudId, CloudKind, CloudTopology, VmHandle};
