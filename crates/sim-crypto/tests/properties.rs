//! Property-based tests for the cryptographic substrate: algebraic laws
//! for the big-integer engine, round-trip and tamper properties for the
//! symmetric primitives.

use proptest::prelude::*;
use sim_crypto::aes::{reference, Aes128};
use sim_crypto::bigint::BigUint;
use sim_crypto::hmac::{hmac_sha256, verify_mac, HmacKey};
use sim_crypto::kdf::{keymat, prf_expand};
use sim_crypto::sha256::{sha256, Sha256};

fn biguint() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u8>(), 0..48).prop_map(|v| BigUint::from_bytes_be(&v))
}

fn nonzero_biguint() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u8>(), 1..32)
        .prop_map(|v| BigUint::from_bytes_be(&v).add(&BigUint::one()))
}

proptest! {
    #[test]
    fn add_commutes(a in biguint(), b in biguint()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn add_associates(a in biguint(), b in biguint(), c in biguint()) {
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    #[test]
    fn mul_commutes(a in biguint(), b in biguint()) {
        prop_assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    fn mul_distributes_over_add(a in biguint(), b in biguint(), c in biguint()) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn sub_inverts_add(a in biguint(), b in biguint()) {
        prop_assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn div_rem_reconstructs(a in biguint(), d in nonzero_biguint()) {
        let (q, r) = a.div_rem(&d);
        prop_assert_eq!(q.mul(&d).add(&r), a);
        prop_assert!(r.cmp_mag(&d) == std::cmp::Ordering::Less);
    }

    #[test]
    fn bytes_round_trip(v in proptest::collection::vec(any::<u8>(), 0..64)) {
        let n = BigUint::from_bytes_be(&v);
        // Canonical form strips leading zeros.
        let stripped: Vec<u8> = v.iter().skip_while(|&&b| b == 0).copied().collect();
        prop_assert_eq!(n.to_bytes_be(), stripped);
    }

    #[test]
    fn hex_round_trip(a in biguint()) {
        prop_assert_eq!(BigUint::from_hex(&a.to_hex()).expect("parses"), a);
    }

    #[test]
    fn shifts_invert(a in biguint(), n in 0usize..200) {
        prop_assert_eq!(a.shl(n).shr(n), a);
    }

    #[test]
    fn modpow_small_exponent_matches_naive(
        base in biguint(),
        e in 0u64..24,
        m in nonzero_biguint(),
    ) {
        prop_assume!(!m.is_one());
        let expect = {
            let mut acc = BigUint::one().rem(&m);
            for _ in 0..e {
                acc = acc.mulmod(&base, &m);
            }
            acc
        };
        prop_assert_eq!(base.modpow(&BigUint::from_u64(e), &m), expect);
    }

    #[test]
    fn modinv_is_inverse(a in nonzero_biguint(), m in nonzero_biguint()) {
        prop_assume!(!m.is_one());
        if let Some(inv) = a.modinv(&m) {
            prop_assert!(a.mulmod(&inv, &m).is_one());
        } else {
            // Not coprime: gcd must be > 1 (or a ≡ 0 mod m).
            let g = a.gcd(&m);
            prop_assert!(!g.is_one() || a.rem(&m).is_zero());
        }
    }

    #[test]
    fn sha256_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..2000),
        cuts in proptest::collection::vec(1usize..64, 0..8),
    ) {
        let mut h = Sha256::new();
        let mut off = 0;
        for c in cuts {
            let end = (off + c).min(data.len());
            h.update(&data[off..end]);
            off = end;
        }
        h.update(&data[off..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn aes_cbc_round_trips(
        key in any::<[u8; 16]>(),
        iv in any::<[u8; 16]>(),
        msg in proptest::collection::vec(any::<u8>(), 0..2000),
    ) {
        let aes = Aes128::new(&key);
        let ct = aes.cbc_encrypt(&iv, &msg);
        prop_assert_eq!(aes.cbc_decrypt(&iv, &ct).expect("valid"), msg);
    }

    #[test]
    fn aes_ctr_is_involutive(
        key in any::<[u8; 16]>(),
        nonce in any::<[u8; 16]>(),
        msg in proptest::collection::vec(any::<u8>(), 0..2000),
    ) {
        let aes = Aes128::new(&key);
        let mut data = msg.clone();
        aes.ctr_apply(&nonce, &mut data);
        aes.ctr_apply(&nonce, &mut data);
        prop_assert_eq!(data, msg);
    }

    #[test]
    fn ttable_encrypt_matches_bytewise_reference(
        key in any::<[u8; 16]>(),
        block in any::<[u8; 16]>(),
    ) {
        let aes = Aes128::new(&key);
        let mut fast = block;
        aes.encrypt_block(&mut fast);
        let mut slow = block;
        reference::encrypt_block(&aes, &mut slow);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn ttable_decrypt_matches_bytewise_reference(
        key in any::<[u8; 16]>(),
        block in any::<[u8; 16]>(),
    ) {
        let aes = Aes128::new(&key);
        let mut fast = block;
        aes.decrypt_block(&mut fast);
        let mut slow = block;
        reference::decrypt_block(&aes, &mut slow);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn aes_cbc_round_trips_all_short_lengths(
        key in any::<[u8; 16]>(),
        iv in any::<[u8; 16]>(),
        fill in any::<u8>(),
        len in 0usize..64,
    ) {
        let msg = vec![fill; len];
        let aes = Aes128::new(&key);
        let ct = aes.cbc_encrypt(&iv, &msg);
        prop_assert_eq!(aes.cbc_decrypt(&iv, &ct).expect("valid"), msg);
    }

    #[test]
    fn cached_hmac_key_matches_oneshot(
        key in proptest::collection::vec(any::<u8>(), 0..100),
        msg in proptest::collection::vec(any::<u8>(), 0..500),
        cut in 0usize..500,
    ) {
        let cached = HmacKey::new(&key);
        prop_assert_eq!(cached.mac(&msg), hmac_sha256(&key, &msg));
        let split = cut.min(msg.len());
        prop_assert_eq!(
            cached.mac_multi(&[&msg[..split], &msg[split..]]),
            hmac_sha256(&key, &msg)
        );
    }

    #[test]
    fn hmac_verifies_and_detects_flips(
        key in proptest::collection::vec(any::<u8>(), 1..80),
        msg in proptest::collection::vec(any::<u8>(), 0..500),
        flip in 0usize..32,
    ) {
        let mac = hmac_sha256(&key, &msg);
        prop_assert!(verify_mac(&mac, &mac));
        let mut bad = mac;
        bad[flip] ^= 0x01;
        prop_assert!(!verify_mac(&mac, &bad));
    }

    #[test]
    fn keymat_is_order_independent_and_prefix_stable(
        kij in proptest::collection::vec(any::<u8>(), 1..64),
        a in any::<[u8; 16]>(),
        b in any::<[u8; 16]>(),
        i in any::<u64>(),
        j in any::<u64>(),
    ) {
        let k1 = keymat(&kij, &a, &b, i, j, 96);
        let k2 = keymat(&kij, &b, &a, i, j, 96);
        prop_assert_eq!(&k1, &k2, "HIT order must not matter");
        let shorter = keymat(&kij, &a, &b, i, j, 48);
        prop_assert_eq!(&k1[..48], &shorter[..]);
    }

    #[test]
    fn prf_prefix_property(
        secret in proptest::collection::vec(any::<u8>(), 1..48),
        seed in proptest::collection::vec(any::<u8>(), 0..48),
        len_a in 1usize..100,
        len_b in 1usize..100,
    ) {
        let (short, long) = if len_a < len_b { (len_a, len_b) } else { (len_b, len_a) };
        let a = prf_expand(&secret, b"label", &seed, short);
        let b = prf_expand(&secret, b"label", &seed, long);
        prop_assert_eq!(&b[..short], &a[..]);
    }
}
