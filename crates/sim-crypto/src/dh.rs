//! Finite-field Diffie-Hellman key agreement.
//!
//! The HIP base exchange carries a DIFFIE_HELLMAN parameter; RFC 5201
//! mandates the RFC 3526 MODP groups. We provide group 14 (2048-bit, the
//! HIP default), group 5 (1536-bit) and a small 512-bit test group for
//! fast unit tests.

use crate::bigint::BigUint;
use rand::Rng;

/// Diffie-Hellman group identifiers matching the HIP DIFFIE_HELLMAN
/// parameter's Group ID field (RFC 5201 §5.2.6).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum DhGroup {
    /// RFC 3526 1536-bit MODP group (HIP Group ID 3).
    Modp1536,
    /// RFC 3526 2048-bit MODP group (HIP Group ID 4, the HIP default).
    Modp2048,
    /// Non-standard 512-bit group for fast tests and simulations where the
    /// cost model, not the arithmetic, provides the timing.
    Test512,
}

impl DhGroup {
    /// HIP wire identifier.
    pub fn group_id(self) -> u8 {
        match self {
            DhGroup::Modp1536 => 3,
            DhGroup::Modp2048 => 4,
            DhGroup::Test512 => 255,
        }
    }

    /// Looks a group up by its wire identifier.
    pub fn from_group_id(id: u8) -> Option<Self> {
        match id {
            3 => Some(DhGroup::Modp1536),
            4 => Some(DhGroup::Modp2048),
            255 => Some(DhGroup::Test512),
            _ => None,
        }
    }

    /// The group prime.
    pub fn prime(self) -> BigUint {
        let hex = match self {
            DhGroup::Modp1536 => MODP_1536,
            DhGroup::Modp2048 => MODP_2048,
            DhGroup::Test512 => TEST_512,
        };
        BigUint::from_hex(hex).expect("built-in group prime parses")
    }

    /// The generator (2 for all supported groups).
    pub fn generator(self) -> BigUint {
        BigUint::from_u64(2)
    }

    /// Size of a public value in bytes.
    pub fn public_len(self) -> usize {
        match self {
            DhGroup::Modp1536 => 192,
            DhGroup::Modp2048 => 256,
            DhGroup::Test512 => 64,
        }
    }

    /// Private exponent size in bits (256 is ample for these groups).
    fn exponent_bits(self) -> usize {
        match self {
            DhGroup::Test512 => 128,
            _ => 256,
        }
    }
}

/// An ephemeral DH key pair for one exchange.
pub struct DhKeyPair {
    group: DhGroup,
    private: BigUint,
    public: BigUint,
}

impl DhKeyPair {
    /// Generates an ephemeral key pair in `group`.
    pub fn generate<R: Rng + ?Sized>(group: DhGroup, rng: &mut R) -> Self {
        let p = group.prime();
        let private = loop {
            let x = BigUint::random_bits(rng, group.exponent_bits());
            if !x.is_zero() && !x.is_one() {
                break x;
            }
        };
        let public = group.generator().modpow(&private, &p);
        DhKeyPair { group, private, public }
    }

    /// The group this key pair lives in.
    pub fn group(&self) -> DhGroup {
        self.group
    }

    /// The public value, padded to the group's fixed length.
    pub fn public_bytes(&self) -> Vec<u8> {
        self.public.to_bytes_be_padded(self.group.public_len())
    }

    /// Computes the shared secret from the peer's public value.
    ///
    /// Returns `None` for degenerate peer values (0, 1, p-1, ≥p), which
    /// must be rejected to avoid small-subgroup confinement.
    pub fn shared_secret(&self, peer_public: &[u8]) -> Option<Vec<u8>> {
        let p = self.group.prime();
        let y = BigUint::from_bytes_be(peer_public);
        if y.is_zero() || y.is_one() {
            return None;
        }
        if y.cmp_mag(&p) != std::cmp::Ordering::Less {
            return None;
        }
        if y == p.sub(&BigUint::one()) {
            return None;
        }
        let secret = y.modpow(&self.private, &p);
        Some(secret.to_bytes_be_padded(self.group.public_len()))
    }
}

// RFC 3526 §2: 1536-bit MODP group.
const MODP_1536: &str = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74\
020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437\
4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED\
EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05\
98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB\
9ED529077096966D670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF";

// RFC 3526 §3: 2048-bit MODP group.
const MODP_2048: &str = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74\
020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437\
4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED\
EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05\
98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB\
9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B\
E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718\
3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF";

// A fixed 512-bit safe prime for the test group (generated once with the
// usual p = 2q+1 construction; value checked prime in tests).
const TEST_512: &str = "ee2c50993f2bc0bb8dcaccb41f81d9cf35e3f7bbd0e8c2b90d143f2704683b67\
27016b2dedc50d6920f98dce68f096b9efa87e7cd76a2e3c89518c5642dd65cf";

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(99)
    }

    #[test]
    fn groups_round_trip_ids() {
        for g in [DhGroup::Modp1536, DhGroup::Modp2048, DhGroup::Test512] {
            assert_eq!(DhGroup::from_group_id(g.group_id()), Some(g));
        }
        assert_eq!(DhGroup::from_group_id(0), None);
    }

    #[test]
    fn agreement_test_group() {
        let mut r = rng();
        let a = DhKeyPair::generate(DhGroup::Test512, &mut r);
        let b = DhKeyPair::generate(DhGroup::Test512, &mut r);
        let s1 = a.shared_secret(&b.public_bytes()).unwrap();
        let s2 = b.shared_secret(&a.public_bytes()).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), DhGroup::Test512.public_len());
    }

    #[test]
    fn agreement_modp2048() {
        let mut r = rng();
        let a = DhKeyPair::generate(DhGroup::Modp2048, &mut r);
        let b = DhKeyPair::generate(DhGroup::Modp2048, &mut r);
        assert_eq!(
            a.shared_secret(&b.public_bytes()).unwrap(),
            b.shared_secret(&a.public_bytes()).unwrap()
        );
    }

    #[test]
    fn degenerate_peers_rejected() {
        let mut r = rng();
        let a = DhKeyPair::generate(DhGroup::Test512, &mut r);
        let p = DhGroup::Test512.prime();
        assert!(a.shared_secret(&[]).is_none()); // zero
        assert!(a.shared_secret(&[1]).is_none()); // one
        assert!(a.shared_secret(&p.to_bytes_be()).is_none()); // == p
        let p_minus_1 = p.sub(&BigUint::one());
        assert!(a.shared_secret(&p_minus_1.to_bytes_be()).is_none());
    }

    #[test]
    fn distinct_pairs_distinct_secrets() {
        let mut r = rng();
        let a = DhKeyPair::generate(DhGroup::Test512, &mut r);
        let b = DhKeyPair::generate(DhGroup::Test512, &mut r);
        let c = DhKeyPair::generate(DhGroup::Test512, &mut r);
        let ab = a.shared_secret(&b.public_bytes()).unwrap();
        let ac = a.shared_secret(&c.public_bytes()).unwrap();
        assert_ne!(ab, ac);
    }

    #[test]
    fn test_group_prime_is_prime() {
        let mut r = rng();
        let p = DhGroup::Test512.prime();
        assert_eq!(p.bits(), 512);
        assert!(crate::prime::is_probable_prime(&p, 16, &mut r));
    }
}
