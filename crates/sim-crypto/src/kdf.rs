//! Key derivation.
//!
//! - [`keymat`]: the HIP KEYMAT expansion of RFC 5201 §6.5 — the DH shared
//!   key is stretched into as many symmetric key bytes as the ESP SAs and
//!   HIP HMACs need, bound to both HITs.
//! - [`prf_expand`]: a TLS-1.2-style PRF used by the `tls-sim` baseline so
//!   both protocols derive keys with the same primitive (HMAC-SHA-256).

use crate::hmac::HmacKey;
use crate::sha256::{sha256_multi, DIGEST_LEN};

/// RFC 5201 §6.5 KEYMAT generation.
///
/// ```text
/// KEYMAT = K1 | K2 | K3 | ...
/// K1 = SHA-256(Kij | sort(HIT-I | HIT-R) | I | J | 0x01)
/// Ki = SHA-256(Kij | K(i-1) | 0x0i)
/// ```
///
/// `kij` is the DH shared secret, `hit_a`/`hit_b` the two HITs (sorted
/// numerically here, as the RFC requires), `i`/`j` the puzzle values.
pub fn keymat(kij: &[u8], hit_a: &[u8; 16], hit_b: &[u8; 16], i: u64, j: u64, out_len: usize) -> Vec<u8> {
    let (lo, hi) = if hit_a <= hit_b { (hit_a, hit_b) } else { (hit_b, hit_a) };
    let i_bytes = i.to_be_bytes();
    let j_bytes = j.to_be_bytes();
    let mut out = Vec::with_capacity(out_len + DIGEST_LEN);
    let mut counter = 1u8;
    let mut prev = sha256_multi(&[kij, lo, hi, &i_bytes, &j_bytes, &[counter]]);
    out.extend_from_slice(&prev);
    while out.len() < out_len {
        counter = counter.wrapping_add(1);
        prev = sha256_multi(&[kij, &prev, &[counter]]);
        out.extend_from_slice(&prev);
    }
    out.truncate(out_len);
    out
}

/// TLS-1.2-style P_SHA256 expansion: `P_hash(secret, label || seed)`.
///
/// Every iteration needs two HMACs under the same `secret` (plus the
/// initial `A(1)`), so the key transcripts are precomputed once via
/// [`HmacKey`] instead of re-deriving the key block per HMAC.
pub fn prf_expand(secret: &[u8], label: &[u8], seed: &[u8], out_len: usize) -> Vec<u8> {
    let key = HmacKey::new(secret);
    let mut label_seed = Vec::with_capacity(label.len() + seed.len());
    label_seed.extend_from_slice(label);
    label_seed.extend_from_slice(seed);
    let mut out = Vec::with_capacity(out_len + DIGEST_LEN);
    // A(1) = HMAC(secret, label_seed); A(i) = HMAC(secret, A(i-1))
    let mut a = key.mac(&label_seed);
    while out.len() < out_len {
        out.extend_from_slice(&key.mac_multi(&[&a, &label_seed]));
        a = key.mac(&a);
    }
    out.truncate(out_len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keymat_deterministic_and_sized() {
        let kij = b"shared secret bytes";
        let hit_a = [1u8; 16];
        let hit_b = [2u8; 16];
        for len in [1usize, 31, 32, 33, 64, 100, 256] {
            let k1 = keymat(kij, &hit_a, &hit_b, 7, 9, len);
            let k2 = keymat(kij, &hit_a, &hit_b, 7, 9, len);
            assert_eq!(k1, k2);
            assert_eq!(k1.len(), len);
        }
    }

    #[test]
    fn keymat_symmetric_in_hit_order() {
        // Both ends must derive the same KEYMAT regardless of which HIT
        // they consider "theirs" — the RFC sorts the HITs.
        let kij = b"kij";
        let a = [0x11u8; 16];
        let b = [0x22u8; 16];
        assert_eq!(keymat(kij, &a, &b, 1, 2, 64), keymat(kij, &b, &a, 1, 2, 64));
    }

    #[test]
    fn keymat_sensitive_to_all_inputs() {
        let base = keymat(b"k", &[1; 16], &[2; 16], 1, 2, 32);
        assert_ne!(base, keymat(b"K", &[1; 16], &[2; 16], 1, 2, 32));
        assert_ne!(base, keymat(b"k", &[3; 16], &[2; 16], 1, 2, 32));
        assert_ne!(base, keymat(b"k", &[1; 16], &[2; 16], 9, 2, 32));
        assert_ne!(base, keymat(b"k", &[1; 16], &[2; 16], 1, 9, 32));
    }

    #[test]
    fn prf_expand_deterministic_distinct_labels() {
        let a = prf_expand(b"secret", b"key expansion", b"seed", 48);
        let b = prf_expand(b"secret", b"key expansion", b"seed", 48);
        let c = prf_expand(b"secret", b"master secret", b"seed", 48);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 48);
    }

    #[test]
    fn prf_expand_prefix_property() {
        // Longer output extends shorter output (streaming property).
        let short = prf_expand(b"s", b"l", b"x", 20);
        let long = prf_expand(b"s", b"l", b"x", 80);
        assert_eq!(&long[..20], &short[..]);
    }
}
