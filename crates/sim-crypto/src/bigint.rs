//! Arbitrary-precision unsigned integer arithmetic.
//!
//! This is the numeric substrate for the RSA, Diffie-Hellman and ECDSA
//! implementations in this crate. Limbs are stored little-endian as `u64`
//! and every value is kept *normalized* (no most-significant zero limbs),
//! so equality and comparison are plain limb comparisons.
//!
//! Division uses Knuth's Algorithm D; modular exponentiation uses
//! Montgomery multiplication (CIOS) for odd moduli, falling back to
//! square-and-multiply with explicit reduction otherwise.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs; invariant: `limbs.last() != Some(&0)`.
    limbs: Vec<u64>,
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl BigUint {
    /// The value zero (no limbs).
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds from a single machine word.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Builds from a 128-bit value.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut n = BigUint { limbs: vec![lo, hi] };
        n.normalize();
        n
    }

    /// Builds from big-endian bytes (the usual wire representation).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut chunk_iter = bytes.rchunks(8);
        for chunk in &mut chunk_iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | u64::from(b);
            }
            limbs.push(limb);
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Serializes to big-endian bytes with no leading zeros (empty for 0).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zeros of the most significant limb.
                let skip = (limb.leading_zeros() / 8) as usize;
                out.extend_from_slice(&bytes[skip..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serializes to exactly `len` big-endian bytes, left-padded with zeros.
    ///
    /// # Panics
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parses a hexadecimal string (no `0x` prefix, case-insensitive).
    pub fn from_hex(s: &str) -> Option<Self> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        if s.is_empty() {
            return None;
        }
        let mut bytes = Vec::with_capacity(s.len() / 2 + 1);
        let chars: Vec<char> = s.chars().collect();
        let mut idx = 0;
        if chars.len() % 2 == 1 {
            bytes.push(chars[0].to_digit(16)? as u8);
            idx = 1;
        }
        while idx < chars.len() {
            let hi = chars[idx].to_digit(16)? as u8;
            let lo = chars[idx + 1].to_digit(16)? as u8;
            bytes.push((hi << 4) | lo);
            idx += 2;
        }
        Some(Self::from_bytes_be(&bytes))
    }

    /// Lower-case hexadecimal rendering without a prefix (`"0"` for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_owned();
        }
        let mut s = String::with_capacity(self.limbs.len() * 16);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:016x}"));
            }
        }
        s
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True iff the lowest bit is clear (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (0 for the value zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Returns bit `i` (counting from the least-significant bit).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// The low 64 bits of the value.
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Addition.
    #[allow(clippy::needless_range_loop)] // parallel walk of two limb arrays
    pub fn add(&self, other: &Self) -> Self {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.len() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = long[i].overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = u64::from(c1) + u64::from(c2);
        }
        if carry != 0 {
            out.push(carry);
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Subtraction; returns `None` if `other > self`.
    pub fn checked_sub(&self, other: &Self) -> Option<Self> {
        if self.cmp_mag(other) == Ordering::Less {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = u64::from(b1) + u64::from(b2);
        }
        debug_assert_eq!(borrow, 0);
        let mut n = BigUint { limbs: out };
        n.normalize();
        Some(n)
    }

    /// Subtraction that panics on underflow.
    pub fn sub(&self, other: &Self) -> Self {
        self.checked_sub(other).expect("BigUint subtraction underflow")
    }

    /// Magnitude comparison.
    pub fn cmp_mag(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {}
            ord => return ord,
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Schoolbook multiplication (O(n·m) with 128-bit partial products).
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = u128::from(out[i + j]) + u128::from(a) * u128::from(b) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = u128::from(out[k]) + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Left shift by `n` bits.
    pub fn shl(&self, n: usize) -> Self {
        if self.is_zero() {
            return Self::zero();
        }
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Right shift by `n` bits.
    pub fn shr(&self, n: usize) -> Self {
        let limb_shift = n / 64;
        if limb_shift >= self.limbs.len() {
            return Self::zero();
        }
        let bit_shift = n % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = src.get(i + 1).map_or(0, |&l| l << (64 - bit_shift));
                out.push(lo | hi);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Quotient and remainder (Knuth Algorithm D).
    ///
    /// # Panics
    /// Panics on division by zero.
    pub fn div_rem(&self, divisor: &Self) -> (Self, Self) {
        assert!(!divisor.is_zero(), "BigUint division by zero");
        match self.cmp_mag(divisor) {
            Ordering::Less => return (Self::zero(), self.clone()),
            Ordering::Equal => return (Self::one(), Self::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(divisor.limbs[0]);
            return (q, Self::from_u64(r));
        }

        // Normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;

        // Working copy of the dividend with one extra high limb.
        let mut un = u.limbs.clone();
        un.push(0);
        let vn = &v.limbs;
        let v_top = vn[n - 1];
        let v_next = vn[n - 2];

        let mut q_limbs = vec![0u64; m + 1];
        for j in (0..=m).rev() {
            // Estimate the quotient digit from the top limbs.
            let num = (u128::from(un[j + n]) << 64) | u128::from(un[j + n - 1]);
            let mut qhat = num / u128::from(v_top);
            let mut rhat = num % u128::from(v_top);
            while qhat >= 1u128 << 64
                || qhat * u128::from(v_next) > (rhat << 64) + u128::from(un[j + n - 2])
            {
                qhat -= 1;
                rhat += u128::from(v_top);
                if rhat >= 1u128 << 64 {
                    break;
                }
            }
            // Multiply-and-subtract qhat * v from the dividend window.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * u128::from(vn[i]) + carry;
                carry = p >> 64;
                let sub = i128::from(un[j + i]) - i128::from(p as u64) + borrow;
                un[j + i] = sub as u64;
                borrow = sub >> 64;
            }
            let sub = i128::from(un[j + n]) - i128::from(carry as u64) + borrow;
            un[j + n] = sub as u64;

            let mut q_digit = qhat as u64;
            if sub < 0 {
                // Estimate was one too large: add the divisor back.
                q_digit -= 1;
                let mut carry = 0u64;
                for i in 0..n {
                    let (s1, c1) = un[j + i].overflowing_add(vn[i]);
                    let (s2, c2) = s1.overflowing_add(carry);
                    un[j + i] = s2;
                    carry = u64::from(c1) + u64::from(c2);
                }
                un[j + n] = un[j + n].wrapping_add(carry);
            }
            q_limbs[j] = q_digit;
        }

        let mut q = BigUint { limbs: q_limbs };
        q.normalize();
        let mut r = BigUint { limbs: un[..n].to_vec() };
        r.normalize();
        (q, r.shr(shift))
    }

    /// Division by a single limb.
    fn div_rem_u64(&self, d: u64) -> (Self, u64) {
        let mut rem = 0u128;
        let mut q = vec![0u64; self.limbs.len()];
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | u128::from(self.limbs[i]);
            q[i] = (cur / u128::from(d)) as u64;
            rem = cur % u128::from(d);
        }
        let mut qn = BigUint { limbs: q };
        qn.normalize();
        (qn, rem as u64)
    }

    /// `self mod m`.
    pub fn rem(&self, m: &Self) -> Self {
        self.div_rem(m).1
    }

    /// `self * other mod m`.
    pub fn mulmod(&self, other: &Self, m: &Self) -> Self {
        self.mul(other).rem(m)
    }

    /// `self ^ exp mod m`, using Montgomery multiplication when `m` is odd.
    ///
    /// # Panics
    /// Panics if `m` is zero.
    pub fn modpow(&self, exp: &Self, m: &Self) -> Self {
        assert!(!m.is_zero(), "modpow with zero modulus");
        if m.is_one() {
            return Self::zero();
        }
        if exp.is_zero() {
            return Self::one();
        }
        if !m.is_even() {
            return MontgomeryCtx::new(m).modpow(self, exp);
        }
        // Fallback: left-to-right square and multiply with full reduction.
        let base = self.rem(m);
        let mut acc = Self::one();
        for i in (0..exp.bits()).rev() {
            acc = acc.mulmod(&acc, m);
            if exp.bit(i) {
                acc = acc.mulmod(&base, m);
            }
        }
        acc
    }

    /// Greatest common divisor (binary-free Euclid; division is fast here).
    pub fn gcd(&self, other: &Self) -> Self {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Modular inverse: `self^-1 mod m`, or `None` if not coprime.
    ///
    /// Extended Euclid tracking only the coefficient of `self`, with the
    /// sign carried separately so everything stays unsigned.
    pub fn modinv(&self, m: &Self) -> Option<Self> {
        if m.is_zero() || m.is_one() {
            return None;
        }
        let a = self.rem(m);
        if a.is_zero() {
            return None;
        }
        // Invariants: old_r = old_s * a (mod m), r = s * a (mod m),
        // with signs tracked in old_neg / neg.
        let (mut old_r, mut r) = (a, m.clone());
        let (mut old_s, mut s) = (Self::one(), Self::zero());
        let (mut old_neg, mut neg) = (false, false);
        while !r.is_zero() {
            let (q, rem) = old_r.div_rem(&r);
            old_r = std::mem::replace(&mut r, rem);
            // new_s = old_s - q * s  (signed)
            let qs = q.mul(&s);
            let (new_s, new_neg) = if old_neg == neg {
                match old_s.cmp_mag(&qs) {
                    Ordering::Less => (qs.sub(&old_s), !old_neg),
                    _ => (old_s.sub(&qs), old_neg),
                }
            } else {
                (old_s.add(&qs), old_neg)
            };
            old_s = std::mem::replace(&mut s, new_s);
            old_neg = std::mem::replace(&mut neg, new_neg);
        }
        if !old_r.is_one() {
            return None;
        }
        let inv = old_s.rem(m);
        Some(if old_neg && !inv.is_zero() { m.sub(&inv) } else { inv })
    }

    /// Uniform random value in `[0, bound)` (rejection sampling).
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn random_below<R: rand::RngExt + ?Sized>(rng: &mut R, bound: &Self) -> Self {
        assert!(!bound.is_zero(), "random_below with zero bound");
        let bits = bound.bits();
        loop {
            let candidate = Self::random_bits(rng, bits);
            if candidate.cmp_mag(bound) == Ordering::Less {
                return candidate;
            }
        }
    }

    /// Random value with at most `bits` bits.
    pub fn random_bits<R: rand::RngExt + ?Sized>(rng: &mut R, bits: usize) -> Self {
        let limbs_needed = bits.div_ceil(64);
        let mut limbs = Vec::with_capacity(limbs_needed);
        for _ in 0..limbs_needed {
            limbs.push(rng.random::<u64>());
        }
        let excess = limbs_needed * 64 - bits;
        if excess > 0 {
            if let Some(top) = limbs.last_mut() {
                *top &= u64::MAX >> excess;
            }
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Random value with *exactly* `bits` bits (top bit forced to 1).
    ///
    /// # Panics
    /// Panics if `bits` is zero.
    pub fn random_exact_bits<R: rand::RngExt + ?Sized>(rng: &mut R, bits: usize) -> Self {
        assert!(bits > 0);
        let mut n = Self::random_bits(rng, bits);
        let limb = (bits - 1) / 64;
        let off = (bits - 1) % 64;
        while n.limbs.len() <= limb {
            n.limbs.push(0);
        }
        n.limbs[limb] |= 1 << off;
        n.normalize();
        n
    }
}

/// Precomputed context for Montgomery multiplication modulo an odd `m`.
struct MontgomeryCtx {
    m: Vec<u64>,
    /// -m^-1 mod 2^64
    m_inv: u64,
    /// R^2 mod m, where R = 2^(64 * len(m))
    r2: BigUint,
}

impl MontgomeryCtx {
    fn new(m: &BigUint) -> Self {
        debug_assert!(!m.is_even() && !m.is_zero());
        // Newton iteration for the inverse of m[0] mod 2^64.
        let m0 = m.limbs[0];
        let mut inv = m0; // correct to 3 bits for odd m0
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
        }
        let m_inv = inv.wrapping_neg();
        let n = m.limbs.len();
        // R^2 mod m computed by shifting.
        let r2 = BigUint::one().shl(2 * 64 * n).rem(m);
        MontgomeryCtx { m: m.limbs.clone(), m_inv, r2 }
    }

    /// CIOS Montgomery multiplication: returns `a * b * R^-1 mod m` where
    /// inputs are length-n limb slices (zero-padded) already `< m`.
    #[allow(clippy::needless_range_loop)] // offset limb walks (t[j], t[j-1])
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let n = self.m.len();
        let mut t = vec![0u64; n + 2];
        for i in 0..n {
            let ai = a.get(i).copied().unwrap_or(0);
            // t += a_i * b
            let mut carry = 0u128;
            for j in 0..n {
                let bj = b.get(j).copied().unwrap_or(0);
                let cur = u128::from(t[j]) + u128::from(ai) * u128::from(bj) + carry;
                t[j] = cur as u64;
                carry = cur >> 64;
            }
            let cur = u128::from(t[n]) + carry;
            t[n] = cur as u64;
            t[n + 1] = (cur >> 64) as u64;
            // m-reduction step
            let u = t[0].wrapping_mul(self.m_inv);
            let mut carry = (u128::from(t[0]) + u128::from(u) * u128::from(self.m[0])) >> 64;
            for j in 1..n {
                let cur = u128::from(t[j]) + u128::from(u) * u128::from(self.m[j]) + carry;
                t[j - 1] = cur as u64;
                carry = cur >> 64;
            }
            let cur = u128::from(t[n]) + carry;
            t[n - 1] = cur as u64;
            t[n] = t[n + 1].wrapping_add((cur >> 64) as u64);
            t[n + 1] = 0;
        }
        // Conditional final subtraction of m.
        let ge = {
            if t[n] != 0 {
                true
            } else {
                let mut ord = Ordering::Equal;
                for j in (0..n).rev() {
                    match t[j].cmp(&self.m[j]) {
                        Ordering::Equal => continue,
                        o => {
                            ord = o;
                            break;
                        }
                    }
                }
                ord != Ordering::Less
            }
        };
        if ge {
            let mut borrow = 0u64;
            for j in 0..n {
                let (d1, b1) = t[j].overflowing_sub(self.m[j]);
                let (d2, b2) = d1.overflowing_sub(borrow);
                t[j] = d2;
                borrow = u64::from(b1) + u64::from(b2);
            }
            t[n] = t[n].wrapping_sub(borrow);
        }
        t.truncate(n);
        t
    }

    fn modpow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        let n = self.m.len();
        let m_big = {
            let mut b = BigUint { limbs: self.m.clone() };
            b.normalize();
            b
        };
        let base = base.rem(&m_big);
        // Convert to Montgomery domain.
        let mut base_m = self.mont_mul(&pad(&base.limbs, n), &pad(&self.r2.limbs, n));
        // acc = 1 in Montgomery domain = R mod m = mont_mul(1, R^2)
        let mut acc = self.mont_mul(&pad(&[1], n), &pad(&self.r2.limbs, n));
        // Right-to-left binary exponentiation.
        for i in 0..exp.bits() {
            if exp.bit(i) {
                acc = self.mont_mul(&acc, &base_m);
            }
            if i + 1 < exp.bits() {
                base_m = self.mont_mul(&base_m, &base_m);
            }
        }
        // Convert out of the Montgomery domain.
        let one = pad(&[1], n);
        let out = self.mont_mul(&acc, &one);
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }
}

fn pad(limbs: &[u64], n: usize) -> Vec<u64> {
    let mut v = limbs.to_vec();
    v.resize(n.max(limbs.len()), 0);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x51a3)
    }

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().bits(), 1);
        assert!(BigUint::zero().is_even());
        assert!(!BigUint::one().is_even());
    }

    #[test]
    fn bytes_round_trip() {
        let n = BigUint::from_bytes_be(&[0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09]);
        assert_eq!(n.to_bytes_be(), vec![0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09]);
        // Leading zeros are dropped.
        let n2 = BigUint::from_bytes_be(&[0x00, 0x00, 0xff]);
        assert_eq!(n2.to_bytes_be(), vec![0xff]);
        assert_eq!(n2.to_bytes_be_padded(4), vec![0, 0, 0, 0xff]);
    }

    #[test]
    fn hex_round_trip() {
        let n = BigUint::from_hex("deadbeefcafebabe0123456789abcdef").unwrap();
        assert_eq!(n.to_hex(), "deadbeefcafebabe0123456789abcdef");
        assert_eq!(BigUint::from_hex("0").unwrap(), BigUint::zero());
        assert!(BigUint::from_hex("xyz").is_none());
    }

    #[test]
    fn add_sub_inverse() {
        let a = BigUint::from_hex("ffffffffffffffffffffffffffffffff").unwrap();
        let b = BigUint::from_u64(1);
        let sum = a.add(&b);
        assert_eq!(sum.to_hex(), "100000000000000000000000000000000");
        assert_eq!(sum.sub(&b), a);
        assert!(a.checked_sub(&sum).is_none());
    }

    #[test]
    fn mul_known_value() {
        let a = BigUint::from_u64(u64::MAX);
        let sq = a.mul(&a);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        assert_eq!(sq.to_hex(), "fffffffffffffffe0000000000000001");
    }

    #[test]
    fn div_rem_exact_and_remainder() {
        let a = BigUint::from_hex("123456789abcdef0123456789abcdef0").unwrap();
        let b = BigUint::from_hex("fedcba9876543210").unwrap();
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r.cmp_mag(&b) == Ordering::Less);
    }

    #[test]
    fn div_rem_randomized() {
        let mut rng = rng();
        for _ in 0..200 {
            let a_bits = 1 + rng.random_range(0..512usize);
            let b_bits = 1 + rng.random_range(0..256usize);
            let a = BigUint::random_bits(&mut rng, a_bits);
            let b = BigUint::random_exact_bits(&mut rng, b_bits);
            let (q, r) = a.div_rem(&b);
            assert_eq!(q.mul(&b).add(&r), a, "a={a} b={b}");
            assert!(r.cmp_mag(&b) == Ordering::Less);
        }
    }

    #[test]
    fn shifts() {
        let a = BigUint::from_hex("1234").unwrap();
        assert_eq!(a.shl(8).to_hex(), "123400");
        assert_eq!(a.shl(64).shr(64), a);
        assert_eq!(a.shr(16), BigUint::zero().add(&BigUint::from_u64(0)));
        assert_eq!(a.shl(100).shr(100), a);
    }

    #[test]
    fn modpow_small_known() {
        // 3^7 mod 10 = 2187 mod 10 = 7
        let r = BigUint::from_u64(3).modpow(&BigUint::from_u64(7), &BigUint::from_u64(10));
        assert_eq!(r, BigUint::from_u64(7));
        // even modulus path: 5^3 mod 8 = 125 mod 8 = 5
        let r = BigUint::from_u64(5).modpow(&BigUint::from_u64(3), &BigUint::from_u64(8));
        assert_eq!(r, BigUint::from_u64(5));
    }

    #[test]
    fn modpow_fermat() {
        // Fermat's little theorem: a^(p-1) = 1 mod p for prime p.
        let p = BigUint::from_hex("ffffffffffffffc5").unwrap(); // a 64-bit prime
        let mut rng = rng();
        for _ in 0..10 {
            let a = BigUint::random_below(&mut rng, &p);
            if a.is_zero() {
                continue;
            }
            let e = p.sub(&BigUint::one());
            assert!(a.modpow(&e, &p).is_one());
        }
    }

    #[test]
    fn modpow_matches_naive() {
        let mut rng = rng();
        for _ in 0..30 {
            let m = BigUint::random_exact_bits(&mut rng, 128);
            let m = if m.is_even() { m.add(&BigUint::one()) } else { m };
            let b = BigUint::random_below(&mut rng, &m);
            let e = BigUint::from_u64(rng.random_range(0..50));
            // naive repeated multiply
            let mut expect = BigUint::one();
            for _ in 0..e.low_u64() {
                expect = expect.mulmod(&b, &m);
            }
            assert_eq!(b.modpow(&e, &m), expect);
        }
    }

    #[test]
    fn modinv_basics() {
        let m = BigUint::from_u64(17);
        for a in 1..17u64 {
            let a = BigUint::from_u64(a);
            let inv = a.modinv(&m).unwrap();
            assert!(a.mulmod(&inv, &m).is_one());
        }
        // Not coprime
        assert!(BigUint::from_u64(6).modinv(&BigUint::from_u64(9)).is_none());
        assert!(BigUint::zero().modinv(&m).is_none());
    }

    #[test]
    fn modinv_randomized() {
        let mut rng = rng();
        let p = BigUint::from_hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff")
            .unwrap(); // P-256 prime
        for _ in 0..50 {
            let a = BigUint::random_below(&mut rng, &p);
            if a.is_zero() {
                continue;
            }
            let inv = a.modinv(&p).unwrap();
            assert!(a.mulmod(&inv, &p).is_one());
        }
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(
            BigUint::from_u64(48).gcd(&BigUint::from_u64(18)),
            BigUint::from_u64(6)
        );
        assert_eq!(BigUint::from_u64(7).gcd(&BigUint::from_u64(13)), BigUint::one());
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = rng();
        let bound = BigUint::from_u64(1000);
        for _ in 0..100 {
            let v = BigUint::random_below(&mut rng, &bound);
            assert!(v.cmp_mag(&bound) == Ordering::Less);
        }
    }

    #[test]
    fn random_exact_bits_has_top_bit() {
        let mut rng = rng();
        for bits in [1usize, 7, 64, 65, 100, 256] {
            let v = BigUint::random_exact_bits(&mut rng, bits);
            assert_eq!(v.bits(), bits);
        }
    }

    #[test]
    fn bit_accessors() {
        let v = BigUint::from_u64(0b1010);
        assert!(!v.bit(0));
        assert!(v.bit(1));
        assert!(!v.bit(2));
        assert!(v.bit(3));
        assert!(!v.bit(200));
    }
}
