//! # sim-crypto
//!
//! From-scratch cryptographic primitives for the `hipcloud` workspace.
//!
//! No cryptography crates are available in this environment, so everything
//! the Host Identity Protocol and the TLS baseline need is implemented
//! here directly from the standards and pinned to published test vectors:
//!
//! - [`bigint`] — arbitrary-precision unsigned arithmetic (Knuth division,
//!   Montgomery modular exponentiation)
//! - [`prime`] — Miller–Rabin and prime generation
//! - [`rsa`] — PKCS#1 v1.5 signatures (the default HIP host identity)
//! - [`dh`] — RFC 3526 MODP Diffie–Hellman (the BEX key agreement)
//! - [`ecdsa`] — P-256 signatures (the HIP ECC extension)
//! - [`mod@sha256`], [`hmac`] — FIPS 180-4 / RFC 2104
//! - [`aes`] — AES-128 with CBC and CTR modes (ESP + TLS record payloads)
//! - [`kdf`] — HIP KEYMAT (RFC 5201 §6.5) and a TLS-style PRF
//!
//! **Security disclaimer:** this crate exists to reproduce a systems
//! paper inside a simulator. It is *not* constant-time, side-channel
//! hardened, or audited. Do not use it to protect real data.

#![warn(missing_docs)]

pub mod aes;
pub mod bigint;
pub mod dh;
pub mod ecdsa;
pub mod hmac;
pub mod kdf;
pub mod prime;
pub mod rsa;
pub mod sha256;

pub use aes::Aes128;
pub use bigint::BigUint;
pub use dh::{DhGroup, DhKeyPair};
pub use ecdsa::{EcdsaKeyPair, EcdsaPublicKey, EcdsaSignature};
pub use hmac::{hmac_sha256, HmacKey, HmacSha256};
pub use rsa::{RsaKeyPair, RsaPublicKey};
pub use sha256::{sha256, Sha256};
