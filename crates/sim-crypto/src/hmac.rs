//! HMAC-SHA-256 (RFC 2104), used for HIP packet MACs, ESP integrity and
//! the TLS record layer.
//!
//! The hot-path type is [`HmacKey`]: it absorbs the ipad into the inner
//! SHA-256 state and the opad into the outer state **once**, at key-setup
//! time. Each MAC then clones the two midstates instead of re-deriving
//! the key block — for short messages that removes one key-block XOR
//! pass and two SHA-256 compressions per MAC, which is exactly the
//! per-packet cost the ESP and TLS-record layers pay.

use crate::sha256::{sha256, Sha256, BLOCK_LEN, DIGEST_LEN};

/// Computes `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    HmacKey::new(key).mac(message)
}

/// A precomputed HMAC-SHA-256 key: the ipad-absorbed inner state and
/// opad-absorbed outer state, computed once. Store one per security
/// association / record cipher and clone per packet.
#[derive(Clone)]
pub struct HmacKey {
    inner: Sha256,
    outer: Sha256,
}

impl HmacKey {
    /// Precomputes the transcripts for `key` (hashed first if longer
    /// than one block).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            k[..DIGEST_LEN].copy_from_slice(&sha256(key));
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        HmacKey { inner, outer }
    }

    /// One-shot MAC of `message` from the cached transcripts.
    pub fn mac(&self, message: &[u8]) -> [u8; DIGEST_LEN] {
        self.begin().chain(message).finalize()
    }

    /// One-shot MAC over several segments without concatenating them —
    /// the replacement for `hmac(key, [a, b, c].concat())` hot paths.
    pub fn mac_multi(&self, parts: &[&[u8]]) -> [u8; DIGEST_LEN] {
        let mut h = self.begin();
        for p in parts {
            h.update(p);
        }
        h.finalize()
    }

    /// Starts an incremental MAC from the cached midstates.
    pub fn begin(&self) -> HmacSha256 {
        HmacSha256 { inner: self.inner.clone(), outer: self.outer.clone() }
    }
}

/// Incremental HMAC-SHA-256. Obtained either from [`HmacSha256::new`]
/// (derives the key block on the spot) or from a cached
/// [`HmacKey::begin`] (clones precomputed midstates).
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer: Sha256,
}

impl HmacSha256 {
    /// Initializes with `key` (hashed first if longer than one block).
    pub fn new(key: &[u8]) -> Self {
        HmacKey::new(key).begin()
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Builder-style `update`.
    pub fn chain(mut self, data: &[u8]) -> Self {
        self.update(data);
        self
    }

    /// Finalizes the MAC.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = self.outer;
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// Constant-time MAC comparison.
pub fn verify_mac(expected: &[u8], actual: &[u8]) -> bool {
    if expected.len() != actual.len() {
        return false;
    }
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(actual) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test vectors for HMAC-SHA-256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_4() {
        let key: Vec<u8> = (1u8..=25).collect();
        let data = [0xcdu8; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&mac),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
        );
    }

    #[test]
    fn rfc4231_case_5_truncated_output() {
        // RFC 4231 case 5: the published vector is the MAC truncated to
        // 128 bits — the same truncation the ESP ICV and TLS record MAC
        // apply on the wire.
        let key = [0x0cu8; 20];
        let mac = hmac_sha256(&key, b"Test With Truncation");
        assert_eq!(hex(&mac[..16]), "a3b6167473100ee06e0c796c2955552b");
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let mac = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"some key";
        let msg: Vec<u8> = (0..1000u32).map(|i| (i % 256) as u8).collect();
        let mut h = HmacSha256::new(key);
        for c in msg.chunks(17) {
            h.update(c);
        }
        assert_eq!(h.finalize(), hmac_sha256(key, &msg));
    }

    #[test]
    fn cached_key_matches_fresh_derivation() {
        for key_len in [0usize, 1, 20, 63, 64, 65, 131] {
            let key: Vec<u8> = (0..key_len).map(|i| (i * 31 % 256) as u8).collect();
            let cached = HmacKey::new(&key);
            for msg_len in [0usize, 1, 55, 56, 64, 100, 1500] {
                let msg: Vec<u8> = (0..msg_len).map(|i| (i * 7 % 256) as u8).collect();
                assert_eq!(
                    cached.mac(&msg),
                    hmac_sha256(&key, &msg),
                    "key_len={key_len} msg_len={msg_len}"
                );
            }
        }
    }

    #[test]
    fn mac_multi_matches_concat() {
        let key = HmacKey::new(b"segmented");
        let parts: [&[u8]; 3] = [b"spi!", b"seq.", b"ciphertext bytes"];
        let concat: Vec<u8> = parts.concat();
        assert_eq!(key.mac_multi(&parts), key.mac(&concat));
    }

    #[test]
    fn cached_key_is_reusable() {
        // A cloned-per-packet key must not accumulate state.
        let key = HmacKey::new(b"reuse me");
        let a = key.mac(b"first packet");
        let _ = key.mac(b"second packet");
        assert_eq!(key.mac(b"first packet"), a);
    }

    #[test]
    fn verify_mac_semantics() {
        let a = [1u8, 2, 3];
        assert!(verify_mac(&a, &[1, 2, 3]));
        assert!(!verify_mac(&a, &[1, 2, 4]));
        assert!(!verify_mac(&a, &[1, 2]));
    }
}
