//! HMAC-SHA-256 (RFC 2104), used for HIP packet MACs, ESP integrity and
//! the TLS record layer.

use crate::sha256::{sha256, Sha256, BLOCK_LEN, DIGEST_LEN};

/// Computes `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    HmacSha256::new(key).chain(message).finalize()
}

/// Incremental HMAC-SHA-256.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer_pad: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Initializes with `key` (hashed first if longer than one block).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            k[..DIGEST_LEN].copy_from_slice(&sha256(key));
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 { inner, outer_pad: opad }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Builder-style `update`.
    pub fn chain(mut self, data: &[u8]) -> Self {
        self.update(data);
        self
    }

    /// Finalizes the MAC.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.outer_pad);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// Constant-time MAC comparison.
pub fn verify_mac(expected: &[u8], actual: &[u8]) -> bool {
    if expected.len() != actual.len() {
        return false;
    }
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(actual) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test vectors for HMAC-SHA-256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let mac = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"some key";
        let msg: Vec<u8> = (0..1000u32).map(|i| (i % 256) as u8).collect();
        let mut h = HmacSha256::new(key);
        for c in msg.chunks(17) {
            h.update(c);
        }
        assert_eq!(h.finalize(), hmac_sha256(key, &msg));
    }

    #[test]
    fn verify_mac_semantics() {
        let a = [1u8, 2, 3];
        assert!(verify_mac(&a, &[1, 2, 3]));
        assert!(!verify_mac(&a, &[1, 2, 4]));
        assert!(!verify_mac(&a, &[1, 2]));
    }
}
