//! ECDSA over NIST P-256.
//!
//! The paper notes (§IV-B) that "the latest version of HIP supports also
//! elliptic-curve cryptography that can curb the processing costs without
//! hardware acceleration" (RFC 5201-bis / Ponomarev et al.). This module
//! lets hosts use ECDSA host identities instead of RSA ones, and the
//! `ecc_vs_rsa` bench quantifies the control-plane saving.
//!
//! Affine-coordinate arithmetic over the P-256 field; slow but simple —
//! protocol timing in the simulator comes from the cost model.

use crate::bigint::BigUint;
use crate::sha256::sha256;
use rand::Rng;
use std::sync::OnceLock;

/// NIST P-256 curve domain parameters.
struct Curve {
    p: BigUint,
    a: BigUint,
    b: BigUint,
    n: BigUint,
    g: Point,
}

/// A point on the curve (affine), with infinity represented explicitly.
#[derive(Clone, PartialEq, Eq, Debug)]
enum Point {
    Infinity,
    Affine { x: BigUint, y: BigUint },
}

fn curve() -> &'static Curve {
    static CURVE: OnceLock<Curve> = OnceLock::new();
    CURVE.get_or_init(|| Curve {
        p: BigUint::from_hex(
            "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff",
        )
        .unwrap(),
        a: BigUint::from_hex(
            "ffffffff00000001000000000000000000000000fffffffffffffffffffffffc",
        )
        .unwrap(),
        b: BigUint::from_hex(
            "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b",
        )
        .unwrap(),
        n: BigUint::from_hex(
            "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551",
        )
        .unwrap(),
        g: Point::Affine {
            x: BigUint::from_hex(
                "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296",
            )
            .unwrap(),
            y: BigUint::from_hex(
                "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5",
            )
            .unwrap(),
        },
    })
}

impl Curve {
    fn mod_sub(&self, a: &BigUint, b: &BigUint) -> BigUint {
        if a.cmp_mag(b) != std::cmp::Ordering::Less {
            a.sub(b)
        } else {
            self.p.sub(&b.sub(a).rem(&self.p))
        }
    }

    fn add(&self, p1: &Point, p2: &Point) -> Point {
        match (p1, p2) {
            (Point::Infinity, q) => q.clone(),
            (q, Point::Infinity) => q.clone(),
            (Point::Affine { x: x1, y: y1 }, Point::Affine { x: x2, y: y2 }) => {
                if x1 == x2 {
                    // Either doubling or inverse points.
                    let y_sum = y1.add(y2).rem(&self.p);
                    if y_sum.is_zero() {
                        return Point::Infinity;
                    }
                    return self.double(p1);
                }
                // lambda = (y2 - y1) / (x2 - x1)
                let num = self.mod_sub(y2, y1);
                let den = self.mod_sub(x2, x1);
                let lambda = num.mulmod(&den.modinv(&self.p).expect("nonzero denominator"), &self.p);
                self.chord(&lambda, x1, y1, x2)
            }
        }
    }

    fn double(&self, p: &Point) -> Point {
        match p {
            Point::Infinity => Point::Infinity,
            Point::Affine { x, y } => {
                if y.is_zero() {
                    return Point::Infinity;
                }
                // lambda = (3x^2 + a) / 2y
                let three_x2 = x.mulmod(x, &self.p).mulmod(&BigUint::from_u64(3), &self.p);
                let num = three_x2.add(&self.a).rem(&self.p);
                let den = y.mulmod(&BigUint::from_u64(2), &self.p);
                let lambda = num.mulmod(&den.modinv(&self.p).expect("nonzero 2y"), &self.p);
                self.chord(&lambda, x, y, x)
            }
        }
    }

    /// Finishes an addition/doubling given the chord/tangent slope:
    /// `x3 = lambda^2 - x1 - x2`, `y3 = lambda (x1 - x3) - y1`.
    fn chord(&self, lambda: &BigUint, x1: &BigUint, y1: &BigUint, x2: &BigUint) -> Point {
        let x3 = self.mod_sub(&self.mod_sub(&lambda.mulmod(lambda, &self.p), x1), x2);
        let y3 = self.mod_sub(&lambda.mulmod(&self.mod_sub(x1, &x3), &self.p), y1);
        Point::Affine { x: x3, y: y3 }
    }

    /// Double-and-add scalar multiplication.
    fn mul(&self, k: &BigUint, p: &Point) -> Point {
        let mut acc = Point::Infinity;
        for i in (0..k.bits()).rev() {
            acc = self.double(&acc);
            if k.bit(i) {
                acc = self.add(&acc, p);
            }
        }
        acc
    }

    fn on_curve(&self, p: &Point) -> bool {
        match p {
            Point::Infinity => true,
            Point::Affine { x, y } => {
                let lhs = y.mulmod(y, &self.p);
                let rhs = x
                    .mulmod(x, &self.p)
                    .mulmod(x, &self.p)
                    .add(&self.a.mulmod(x, &self.p))
                    .add(&self.b)
                    .rem(&self.p);
                lhs == rhs
            }
        }
    }
}

/// An ECDSA P-256 public key.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EcdsaPublicKey {
    point: Point,
}

/// An ECDSA P-256 key pair.
#[derive(Clone)]
pub struct EcdsaKeyPair {
    d: BigUint,
    public: EcdsaPublicKey,
}

/// An ECDSA signature `(r, s)`, serialized as two 32-byte values.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EcdsaSignature {
    r: BigUint,
    s: BigUint,
}

impl EcdsaKeyPair {
    /// Generates a key pair.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let c = curve();
        let d = loop {
            let d = BigUint::random_below(rng, &c.n);
            if !d.is_zero() {
                break d;
            }
        };
        let point = c.mul(&d, &c.g);
        EcdsaKeyPair { d, public: EcdsaPublicKey { point } }
    }

    /// The public half.
    pub fn public(&self) -> &EcdsaPublicKey {
        &self.public
    }

    /// Signs the SHA-256 digest of `message` with a random nonce.
    pub fn sign<R: Rng + ?Sized>(&self, message: &[u8], rng: &mut R) -> EcdsaSignature {
        let c = curve();
        let z = BigUint::from_bytes_be(&sha256(message)).rem(&c.n);
        loop {
            let k = loop {
                let k = BigUint::random_below(rng, &c.n);
                if !k.is_zero() {
                    break k;
                }
            };
            let Point::Affine { x, .. } = c.mul(&k, &c.g) else { continue };
            let r = x.rem(&c.n);
            if r.is_zero() {
                continue;
            }
            let k_inv = k.modinv(&c.n).expect("k in [1, n) is invertible");
            let s = k_inv.mulmod(&z.add(&r.mulmod(&self.d, &c.n)), &c.n);
            if s.is_zero() {
                continue;
            }
            return EcdsaSignature { r, s };
        }
    }
}

impl EcdsaPublicKey {
    /// Verifies `signature` over `message`.
    pub fn verify(&self, message: &[u8], signature: &EcdsaSignature) -> bool {
        let c = curve();
        let (r, s) = (&signature.r, &signature.s);
        if r.is_zero() || s.is_zero() {
            return false;
        }
        if r.cmp_mag(&c.n) != std::cmp::Ordering::Less
            || s.cmp_mag(&c.n) != std::cmp::Ordering::Less
        {
            return false;
        }
        if !c.on_curve(&self.point) || self.point == Point::Infinity {
            return false;
        }
        let z = BigUint::from_bytes_be(&sha256(message)).rem(&c.n);
        let Some(s_inv) = s.modinv(&c.n) else { return false };
        let u1 = z.mulmod(&s_inv, &c.n);
        let u2 = r.mulmod(&s_inv, &c.n);
        let point = c.add(&c.mul(&u1, &c.g), &c.mul(&u2, &self.point));
        match point {
            Point::Infinity => false,
            Point::Affine { x, .. } => &x.rem(&c.n) == r,
        }
    }

    /// Serializes as uncompressed SEC1: `04 || X (32) || Y (32)`.
    pub fn to_bytes(&self) -> Vec<u8> {
        match &self.point {
            Point::Infinity => vec![0x00],
            Point::Affine { x, y } => {
                let mut out = Vec::with_capacity(65);
                out.push(0x04);
                out.extend_from_slice(&x.to_bytes_be_padded(32));
                out.extend_from_slice(&y.to_bytes_be_padded(32));
                out
            }
        }
    }

    /// Parses an uncompressed SEC1 point, validating curve membership.
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        if data.len() != 65 || data[0] != 0x04 {
            return None;
        }
        let point = Point::Affine {
            x: BigUint::from_bytes_be(&data[1..33]),
            y: BigUint::from_bytes_be(&data[33..65]),
        };
        if !curve().on_curve(&point) {
            return None;
        }
        Some(EcdsaPublicKey { point })
    }
}

impl EcdsaSignature {
    /// Serializes as `r (32) || s (32)`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.r.to_bytes_be_padded(32);
        out.extend_from_slice(&self.s.to_bytes_be_padded(32));
        out
    }

    /// Parses the 64-byte serialization.
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        if data.len() != 64 {
            return None;
        }
        Some(EcdsaSignature {
            r: BigUint::from_bytes_be(&data[..32]),
            s: BigUint::from_bytes_be(&data[32..]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(2718)
    }

    #[test]
    fn generator_on_curve() {
        let c = curve();
        assert!(c.on_curve(&c.g));
    }

    #[test]
    fn generator_has_order_n() {
        let c = curve();
        assert_eq!(c.mul(&c.n, &c.g), Point::Infinity);
        // n-1 times G is not infinity
        let n_minus_1 = c.n.sub(&BigUint::one());
        assert_ne!(c.mul(&n_minus_1, &c.g), Point::Infinity);
    }

    #[test]
    fn point_addition_laws() {
        let c = curve();
        let two_g_via_double = c.double(&c.g);
        let two_g_via_add = c.add(&c.g, &c.g);
        assert_eq!(two_g_via_double, two_g_via_add);
        assert!(c.on_curve(&two_g_via_double));
        // G + infinity = G
        assert_eq!(c.add(&c.g, &Point::Infinity), c.g);
        // 2G + G == 3G
        let three_g = c.mul(&BigUint::from_u64(3), &c.g);
        assert_eq!(c.add(&two_g_via_add, &c.g), three_g);
    }

    #[test]
    fn sign_verify_round_trip() {
        let mut r = rng();
        let kp = EcdsaKeyPair::generate(&mut r);
        let sig = kp.sign(b"elliptic hip", &mut r);
        assert!(kp.public().verify(b"elliptic hip", &sig));
    }

    #[test]
    fn verify_rejects_tampering() {
        let mut r = rng();
        let kp = EcdsaKeyPair::generate(&mut r);
        let sig = kp.sign(b"message", &mut r);
        assert!(!kp.public().verify(b"other message", &sig));
        let other = EcdsaKeyPair::generate(&mut r);
        assert!(!other.public().verify(b"message", &sig));
    }

    #[test]
    fn signature_bytes_round_trip() {
        let mut r = rng();
        let kp = EcdsaKeyPair::generate(&mut r);
        let sig = kp.sign(b"serialize me", &mut r);
        let bytes = sig.to_bytes();
        assert_eq!(bytes.len(), 64);
        assert_eq!(EcdsaSignature::from_bytes(&bytes).unwrap(), sig);
        assert!(EcdsaSignature::from_bytes(&bytes[..63]).is_none());
    }

    #[test]
    fn public_key_bytes_round_trip() {
        let mut r = rng();
        let kp = EcdsaKeyPair::generate(&mut r);
        let bytes = kp.public().to_bytes();
        assert_eq!(bytes.len(), 65);
        assert_eq!(&EcdsaPublicKey::from_bytes(&bytes).unwrap(), kp.public());
        // Off-curve point rejected.
        let mut bad = bytes.clone();
        bad[64] ^= 0x01;
        assert!(EcdsaPublicKey::from_bytes(&bad).is_none());
    }

    #[test]
    fn zero_signature_rejected() {
        let mut r = rng();
        let kp = EcdsaKeyPair::generate(&mut r);
        let zero = EcdsaSignature { r: BigUint::zero(), s: BigUint::zero() };
        assert!(!kp.public().verify(b"m", &zero));
    }
}
