//! AES-128 (FIPS 197) with CBC and CTR modes.
//!
//! This is the symmetric cipher for the HIP ESP-BEET data plane and the
//! TLS record layer. Two implementations live here:
//!
//! - The **T-table fast path** (default): four 256×u32 encryption tables
//!   and their inverses, built once via `OnceLock` *from the S-box itself*
//!   (so a table bug cannot silently diverge from the byte-wise math —
//!   both derive from the same constants), fuse SubBytes/ShiftRows/
//!   MixColumns into one lookup-XOR round over four column words.
//!   CBC folds the prev-block XOR into the first AddRoundKey, and CTR
//!   runs a multi-block word-level keystream path.
//! - The **byte-wise reference** ([`reference`]): the original
//!   straightforward separate-pass implementation, kept as the oracle
//!   for equivalence tests and selectable at runtime via
//!   [`set_reference_mode`] so whole-simulation regression tests can
//!   prove the fast path changes no output byte.
//!
//! Both are pinned to the FIPS 197 / SP 800-38A vectors below.

use std::cell::Cell;
use std::sync::OnceLock;

/// AES block size in bytes.
pub const BLOCK_LEN: usize = 16;
/// AES-128 key size in bytes.
pub const KEY_LEN: usize = 16;

const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Inverse S-box, generated once at first use.
fn inv_sbox() -> &'static [u8; 256] {
    static INV: OnceLock<[u8; 256]> = OnceLock::new();
    INV.get_or_init(|| {
        let mut inv = [0u8; 256];
        for (i, &s) in SBOX.iter().enumerate() {
            inv[s as usize] = i as u8;
        }
        inv
    })
}

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

fn gmul(a: u8, b: u8) -> u8 {
    let mut a = a;
    let mut b = b;
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

thread_local! {
    static REFERENCE_MODE: Cell<bool> = const { Cell::new(false) };
}

/// Forces the byte-wise [`reference`] implementation for every AES call
/// on the current thread. Used by regression tests to prove the T-table
/// fast path is output-identical at whole-simulation scale.
pub fn set_reference_mode(on: bool) {
    REFERENCE_MODE.with(|m| m.set(on));
}

/// Whether [`set_reference_mode`] forced the byte-wise path on this thread.
pub fn reference_mode() -> bool {
    REFERENCE_MODE.with(|m| m.get())
}

/// The fused encryption/decryption lookup tables.
///
/// `te[k][x]` is the MixColumns-weighted contribution of S-box output
/// `SBOX[x]` when it lands in byte position `k` of a column;
/// `td[k][x]` is the same for the inverse cipher (InvSBox +
/// InvMixColumns). One round becomes four lookups + XORs per column.
struct Tables {
    te: [[u32; 256]; 4],
    td: [[u32; 256]; 4],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let isb = inv_sbox();
        let mut te = [[0u32; 256]; 4];
        let mut td = [[0u32; 256]; 4];
        for x in 0..256 {
            // Forward: MixColumns matrix column (02, 01, 01, 03) applied
            // to the S-box output, then rotated for byte positions 1..3.
            let s = SBOX[x];
            let s2 = xtime(s);
            let s3 = s2 ^ s;
            te[0][x] = u32::from_be_bytes([s2, s, s, s3]);
            te[1][x] = te[0][x].rotate_right(8);
            te[2][x] = te[0][x].rotate_right(16);
            te[3][x] = te[0][x].rotate_right(24);
            // Inverse: InvMixColumns column (0e, 09, 0d, 0b) applied to
            // the inverse S-box output.
            let v = isb[x];
            td[0][x] = u32::from_be_bytes([gmul(v, 14), gmul(v, 9), gmul(v, 13), gmul(v, 11)]);
            td[1][x] = td[0][x].rotate_right(8);
            td[2][x] = td[0][x].rotate_right(16);
            td[3][x] = td[0][x].rotate_right(24);
        }
        Tables { te, td }
    })
}

/// Applies InvMixColumns to one big-endian column word (used to derive
/// the equivalent-inverse-cipher round keys).
fn inv_mix_word(w: u32) -> u32 {
    let [a, b, c, d] = w.to_be_bytes();
    u32::from_be_bytes([
        gmul(a, 14) ^ gmul(b, 11) ^ gmul(c, 13) ^ gmul(d, 9),
        gmul(a, 9) ^ gmul(b, 14) ^ gmul(c, 11) ^ gmul(d, 13),
        gmul(a, 13) ^ gmul(b, 9) ^ gmul(c, 14) ^ gmul(d, 11),
        gmul(a, 11) ^ gmul(b, 13) ^ gmul(c, 9) ^ gmul(d, 14),
    ])
}

#[inline]
fn load_words(block: &[u8]) -> [u32; 4] {
    [
        u32::from_be_bytes(block[0..4].try_into().expect("4 bytes")),
        u32::from_be_bytes(block[4..8].try_into().expect("4 bytes")),
        u32::from_be_bytes(block[8..12].try_into().expect("4 bytes")),
        u32::from_be_bytes(block[12..16].try_into().expect("4 bytes")),
    ]
}

#[inline]
fn store_words(w: [u32; 4], block: &mut [u8]) {
    block[0..4].copy_from_slice(&w[0].to_be_bytes());
    block[4..8].copy_from_slice(&w[1].to_be_bytes());
    block[8..12].copy_from_slice(&w[2].to_be_bytes());
    block[12..16].copy_from_slice(&w[3].to_be_bytes());
}

/// An expanded AES-128 key: byte round keys (for the [`reference`]
/// path), word round keys (fast encrypt) and the InvMixColumns-folded
/// decryption round keys (fast decrypt, equivalent inverse cipher).
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
    rk: [[u32; 4]; 11],
    dk: [[u32; 4]; 11],
}

impl Aes128 {
    /// Expands a 16-byte key.
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        let mut rk = [[0u32; 4]; 11];
        for (r, words) in rk.iter_mut().enumerate() {
            *words = load_words(&round_keys[r]);
        }
        // Equivalent inverse cipher: decryption round keys are the
        // encryption keys in reverse order, with InvMixColumns applied
        // to all but the first and last.
        let mut dk = [[0u32; 4]; 11];
        dk[0] = rk[10];
        dk[10] = rk[0];
        for r in 1..10 {
            for c in 0..4 {
                dk[r][c] = inv_mix_word(rk[10 - r][c]);
            }
        }
        Aes128 { round_keys, rk, dk }
    }

    /// One fused table round per call site: 9 main rounds + the S-box
    /// final round. `s` must already have round key 0 absorbed.
    #[inline]
    fn encrypt_words(&self, t: &Tables, mut s: [u32; 4]) -> [u32; 4] {
        for r in 1..10 {
            let rk = &self.rk[r];
            s = [
                t.te[0][(s[0] >> 24) as usize]
                    ^ t.te[1][((s[1] >> 16) & 0xff) as usize]
                    ^ t.te[2][((s[2] >> 8) & 0xff) as usize]
                    ^ t.te[3][(s[3] & 0xff) as usize]
                    ^ rk[0],
                t.te[0][(s[1] >> 24) as usize]
                    ^ t.te[1][((s[2] >> 16) & 0xff) as usize]
                    ^ t.te[2][((s[3] >> 8) & 0xff) as usize]
                    ^ t.te[3][(s[0] & 0xff) as usize]
                    ^ rk[1],
                t.te[0][(s[2] >> 24) as usize]
                    ^ t.te[1][((s[3] >> 16) & 0xff) as usize]
                    ^ t.te[2][((s[0] >> 8) & 0xff) as usize]
                    ^ t.te[3][(s[1] & 0xff) as usize]
                    ^ rk[2],
                t.te[0][(s[3] >> 24) as usize]
                    ^ t.te[1][((s[0] >> 16) & 0xff) as usize]
                    ^ t.te[2][((s[1] >> 8) & 0xff) as usize]
                    ^ t.te[3][(s[2] & 0xff) as usize]
                    ^ rk[3],
            ];
        }
        let rk = &self.rk[10];
        let sub = |s: &[u32; 4], a: usize, b: usize, c: usize, d: usize| -> u32 {
            (u32::from(SBOX[(s[a] >> 24) as usize]) << 24)
                | (u32::from(SBOX[((s[b] >> 16) & 0xff) as usize]) << 16)
                | (u32::from(SBOX[((s[c] >> 8) & 0xff) as usize]) << 8)
                | u32::from(SBOX[(s[d] & 0xff) as usize])
        };
        [
            sub(&s, 0, 1, 2, 3) ^ rk[0],
            sub(&s, 1, 2, 3, 0) ^ rk[1],
            sub(&s, 2, 3, 0, 1) ^ rk[2],
            sub(&s, 3, 0, 1, 2) ^ rk[3],
        ]
    }

    /// Inverse of [`Self::encrypt_words`]; `s` must already have
    /// decryption round key 0 (= encryption key 10) absorbed.
    #[inline]
    fn decrypt_words(&self, t: &Tables, mut s: [u32; 4]) -> [u32; 4] {
        for r in 1..10 {
            let dk = &self.dk[r];
            s = [
                t.td[0][(s[0] >> 24) as usize]
                    ^ t.td[1][((s[3] >> 16) & 0xff) as usize]
                    ^ t.td[2][((s[2] >> 8) & 0xff) as usize]
                    ^ t.td[3][(s[1] & 0xff) as usize]
                    ^ dk[0],
                t.td[0][(s[1] >> 24) as usize]
                    ^ t.td[1][((s[0] >> 16) & 0xff) as usize]
                    ^ t.td[2][((s[3] >> 8) & 0xff) as usize]
                    ^ t.td[3][(s[2] & 0xff) as usize]
                    ^ dk[1],
                t.td[0][(s[2] >> 24) as usize]
                    ^ t.td[1][((s[1] >> 16) & 0xff) as usize]
                    ^ t.td[2][((s[0] >> 8) & 0xff) as usize]
                    ^ t.td[3][(s[3] & 0xff) as usize]
                    ^ dk[2],
                t.td[0][(s[3] >> 24) as usize]
                    ^ t.td[1][((s[2] >> 16) & 0xff) as usize]
                    ^ t.td[2][((s[1] >> 8) & 0xff) as usize]
                    ^ t.td[3][(s[0] & 0xff) as usize]
                    ^ dk[3],
            ];
        }
        let dk = &self.dk[10];
        let isb = inv_sbox();
        let sub = |s: &[u32; 4], a: usize, b: usize, c: usize, d: usize| -> u32 {
            (u32::from(isb[(s[a] >> 24) as usize]) << 24)
                | (u32::from(isb[((s[b] >> 16) & 0xff) as usize]) << 16)
                | (u32::from(isb[((s[c] >> 8) & 0xff) as usize]) << 8)
                | u32::from(isb[(s[d] & 0xff) as usize])
        };
        [
            sub(&s, 0, 3, 2, 1) ^ dk[0],
            sub(&s, 1, 0, 3, 2) ^ dk[1],
            sub(&s, 2, 1, 0, 3) ^ dk[2],
            sub(&s, 3, 2, 1, 0) ^ dk[3],
        ]
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        if reference_mode() {
            reference::encrypt_block(self, block);
            return;
        }
        let t = tables();
        let mut s = load_words(block);
        for (w, k) in s.iter_mut().zip(&self.rk[0]) {
            *w ^= k;
        }
        store_words(self.encrypt_words(t, s), block);
    }

    /// Decrypts one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        if reference_mode() {
            reference::decrypt_block(self, block);
            return;
        }
        let t = tables();
        let mut s = load_words(block);
        for (w, k) in s.iter_mut().zip(&self.dk[0]) {
            *w ^= k;
        }
        store_words(self.decrypt_words(t, s), block);
    }

    /// CBC ciphertext length for a plaintext of `plain_len` bytes under
    /// the PKCS#7 padding [`Self::cbc_encrypt`] applies (pad is always
    /// 1..=16 bytes, so an exact multiple grows by one block). Lets
    /// batched callers account per-frame wire bytes analytically without
    /// running the cipher per frame.
    pub const fn cbc_padded_len(plain_len: usize) -> usize {
        plain_len + (BLOCK_LEN - plain_len % BLOCK_LEN)
    }

    /// CBC encryption with PKCS#7 padding. Output is a multiple of 16 bytes
    /// and always at least one block longer than an exact-multiple input.
    pub fn cbc_encrypt(&self, iv: &[u8; BLOCK_LEN], plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        self.cbc_encrypt_into(iv, plaintext, &mut out);
        out
    }

    /// Like [`Self::cbc_encrypt`], but *appends* the ciphertext to `out`
    /// (which is not cleared), so callers can pool one buffer per
    /// association or prepend a header before the ciphertext.
    pub fn cbc_encrypt_into(&self, iv: &[u8; BLOCK_LEN], plaintext: &[u8], out: &mut Vec<u8>) {
        let start = out.len();
        let pad = BLOCK_LEN - plaintext.len() % BLOCK_LEN;
        out.reserve(plaintext.len() + pad);
        out.extend_from_slice(plaintext);
        out.extend(std::iter::repeat_n(pad as u8, pad));
        if reference_mode() {
            let mut prev = *iv;
            for chunk in out[start..].chunks_mut(BLOCK_LEN) {
                let block: &mut [u8; BLOCK_LEN] = chunk.try_into().expect("block");
                for (b, p) in block.iter_mut().zip(&prev) {
                    *b ^= p;
                }
                reference::encrypt_block(self, block);
                prev = *block;
            }
            return;
        }
        let t = tables();
        let rk0 = self.rk[0];
        // The chaining XOR and round key 0 are folded into one pass.
        let mut prev = load_words(iv);
        for chunk in out[start..].chunks_mut(BLOCK_LEN) {
            let mut s = load_words(chunk);
            for i in 0..4 {
                s[i] ^= prev[i] ^ rk0[i];
            }
            prev = self.encrypt_words(t, s);
            store_words(prev, chunk);
        }
    }

    /// CBC decryption undoing PKCS#7 padding. Returns `None` on malformed
    /// input (length not a block multiple, or invalid padding).
    pub fn cbc_decrypt(&self, iv: &[u8; BLOCK_LEN], ciphertext: &[u8]) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        if self.cbc_decrypt_into(iv, ciphertext, &mut out) {
            Some(out)
        } else {
            None
        }
    }

    /// Like [`Self::cbc_decrypt`], but *appends* the plaintext to `out`.
    /// Returns false (leaving `out` as it was) on malformed input.
    pub fn cbc_decrypt_into(&self, iv: &[u8; BLOCK_LEN], ciphertext: &[u8], out: &mut Vec<u8>) -> bool {
        if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(BLOCK_LEN) {
            return false;
        }
        let start = out.len();
        out.extend_from_slice(ciphertext);
        if reference_mode() {
            let mut prev = *iv;
            for chunk in out[start..].chunks_mut(BLOCK_LEN) {
                let block: &mut [u8; BLOCK_LEN] = chunk.try_into().expect("block");
                let saved = *block;
                reference::decrypt_block(self, block);
                for (b, p) in block.iter_mut().zip(&prev) {
                    *b ^= p;
                }
                prev = saved;
            }
        } else {
            let t = tables();
            let dk0 = self.dk[0];
            let mut prev = load_words(iv);
            for chunk in out[start..].chunks_mut(BLOCK_LEN) {
                let saved = load_words(chunk);
                let mut s = saved;
                for i in 0..4 {
                    s[i] ^= dk0[i];
                }
                let mut p = self.decrypt_words(t, s);
                for i in 0..4 {
                    p[i] ^= prev[i];
                }
                store_words(p, chunk);
                prev = saved;
            }
        }
        let pad = out[out.len() - 1] as usize;
        if pad == 0 || pad > BLOCK_LEN || pad > out.len() - start
            || !out[out.len() - pad..].iter().all(|&b| b == pad as u8)
        {
            out.truncate(start);
            return false;
        }
        out.truncate(out.len() - pad);
        true
    }

    /// CTR-mode keystream XOR (encryption and decryption are identical).
    /// The 16-byte `nonce_counter` is the initial counter block; the final
    /// 32 bits are incremented per block. Whole blocks run through the
    /// word-level multi-block keystream path; only a trailing partial
    /// block falls back to byte-wise XOR.
    pub fn ctr_apply(&self, nonce_counter: &[u8; BLOCK_LEN], data: &mut [u8]) {
        let mut counter = *nonce_counter;
        if reference_mode() {
            for chunk in data.chunks_mut(BLOCK_LEN) {
                let mut keystream = counter;
                reference::encrypt_block(self, &mut keystream);
                for (d, k) in chunk.iter_mut().zip(keystream.iter()) {
                    *d ^= k;
                }
                incr_counter(&mut counter);
            }
            return;
        }
        let t = tables();
        let rk0 = self.rk[0];
        let mut chunks = data.chunks_exact_mut(BLOCK_LEN);
        for chunk in &mut chunks {
            let mut s = load_words(&counter);
            for i in 0..4 {
                s[i] ^= rk0[i];
            }
            let ks = self.encrypt_words(t, s);
            let mut d = load_words(chunk);
            for i in 0..4 {
                d[i] ^= ks[i];
            }
            store_words(d, chunk);
            incr_counter(&mut counter);
        }
        let tail = chunks.into_remainder();
        if !tail.is_empty() {
            let mut s = load_words(&counter);
            for i in 0..4 {
                s[i] ^= rk0[i];
            }
            let mut keystream = [0u8; BLOCK_LEN];
            store_words(self.encrypt_words(t, s), &mut keystream);
            for (d, k) in tail.iter_mut().zip(keystream.iter()) {
                *d ^= k;
            }
        }
    }
}

/// Increments the trailing 32-bit big-endian counter of a CTR block.
fn incr_counter(counter: &mut [u8; BLOCK_LEN]) {
    for i in (BLOCK_LEN - 4..BLOCK_LEN).rev() {
        counter[i] = counter[i].wrapping_add(1);
        if counter[i] != 0 {
            break;
        }
    }
}

pub mod reference {
    //! The original byte-oriented AES implementation: separate SubBytes/
    //! ShiftRows/MixColumns/AddRoundKey passes, exactly as in FIPS 197's
    //! pseudocode. Slower but obviously-correct; the T-table fast path is
    //! proven equivalent to it by proptest (random keys/blocks) and by
    //! whole-simulation regression runs under [`super::set_reference_mode`].

    use super::{inv_sbox, gmul, xtime, Aes128, BLOCK_LEN, SBOX};

    /// Encrypts one block with the byte-wise reference rounds.
    pub fn encrypt_block(aes: &Aes128, block: &mut [u8; BLOCK_LEN]) {
        add_round_key(block, &aes.round_keys[0]);
        for round in 1..10 {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &aes.round_keys[round]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &aes.round_keys[10]);
    }

    /// Decrypts one block with the byte-wise reference rounds.
    pub fn decrypt_block(aes: &Aes128, block: &mut [u8; BLOCK_LEN]) {
        add_round_key(block, &aes.round_keys[10]);
        inv_shift_rows(block);
        inv_sub_bytes(block);
        for round in (1..10).rev() {
            add_round_key(block, &aes.round_keys[round]);
            inv_mix_columns(block);
            inv_shift_rows(block);
            inv_sub_bytes(block);
        }
        add_round_key(block, &aes.round_keys[0]);
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk) {
            *s ^= k;
        }
    }

    fn sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = SBOX[*b as usize];
        }
    }

    fn inv_sub_bytes(state: &mut [u8; 16]) {
        let inv = inv_sbox();
        for b in state.iter_mut() {
            *b = inv[*b as usize];
        }
    }

    // State is column-major: state[4*c + r] is row r, column c.
    fn shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[4 * c + r] = s[4 * ((c + r) % 4) + r];
            }
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[4 * ((c + r) % 4) + r] = s[4 * c + r];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
            state[4 * c] = xtime(col[0]) ^ (xtime(col[1]) ^ col[1]) ^ col[2] ^ col[3];
            state[4 * c + 1] = col[0] ^ xtime(col[1]) ^ (xtime(col[2]) ^ col[2]) ^ col[3];
            state[4 * c + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ (xtime(col[3]) ^ col[3]);
            state[4 * c + 3] = (xtime(col[0]) ^ col[0]) ^ col[1] ^ col[2] ^ xtime(col[3]);
        }
    }

    fn inv_mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
            state[4 * c] = gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
            state[4 * c + 1] = gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
            state[4 * c + 2] = gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
            state[4 * c + 3] = gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbc_padded_len_matches_cbc_encrypt() {
        let key = Aes128::new(&[7u8; 16]);
        let iv = [3u8; 16];
        for len in [0usize, 1, 15, 16, 17, 23 + 1448, 23 + 65160, 100] {
            let pt = vec![0x5au8; len];
            let ct = key.cbc_encrypt(&iv, &pt);
            assert_eq!(ct.len(), Aes128::cbc_padded_len(len), "len {len}");
        }
    }

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("hex"))
            .collect()
    }

    /// SP 800-38A's AES-128 key, shared by the CBC/CTR vectors.
    const NIST_KEY: [u8; 16] = [
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f,
        0x3c,
    ];

    /// SP 800-38A's four plaintext blocks.
    fn nist_plaintext() -> Vec<u8> {
        unhex(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411e5fbc1191a0a52ef",
            "f69f2445df4f9b17ad2b417be66c3710",
        ))
    }

    #[test]
    fn fips197_appendix_b() {
        // FIPS 197 Appendix B worked example.
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let mut block: [u8; 16] = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let aes = Aes128::new(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(hex(&block), "3925841d02dc09fbdc118597196a0b32");
        aes.decrypt_block(&mut block);
        assert_eq!(hex(&block), "3243f6a8885a308d313198a2e0370734");
    }

    #[test]
    fn fips197_appendix_c1_encrypt_and_decrypt() {
        let key: [u8; 16] = (0u8..16).collect::<Vec<_>>().try_into().expect("16");
        let plain: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let aes = Aes128::new(&key);
        let mut block = plain;
        aes.encrypt_block(&mut block);
        assert_eq!(hex(&block), "69c4e0d86a7b0430d8cdb78070b4c55a");
        // The C.1 vector run backwards pins the fast decrypt path too.
        aes.decrypt_block(&mut block);
        assert_eq!(block, plain);
    }

    #[test]
    fn sp800_38a_cbc_vectors() {
        // SP 800-38A F.2.1/F.2.2. Our CBC always appends PKCS#7 padding,
        // so the first four ciphertext blocks must match the vector
        // exactly and one padding block follows.
        let iv: [u8; 16] = unhex("000102030405060708090a0b0c0d0e0f").try_into().expect("iv");
        let aes = Aes128::new(&NIST_KEY);
        let ct = aes.cbc_encrypt(&iv, &nist_plaintext());
        assert_eq!(ct.len(), 80);
        assert_eq!(
            hex(&ct[..64]),
            concat!(
                "7649abac8119b246cee98e9b12e9197d",
                "5086cb9b507219ee95db113a917678b2",
                "73bed6b8e3c1743b7116e69e22229516",
                "3ff1caa1681fac09120eca307586e1a7",
            )
        );
        assert_eq!(aes.cbc_decrypt(&iv, &ct).expect("valid"), nist_plaintext());
    }

    #[test]
    fn sp800_38a_ctr_vectors() {
        // SP 800-38A F.5.1/F.5.2 (encrypt == decrypt in CTR).
        let counter: [u8; 16] = unhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff").try_into().expect("ctr");
        let aes = Aes128::new(&NIST_KEY);
        let mut data = nist_plaintext();
        aes.ctr_apply(&counter, &mut data);
        assert_eq!(
            hex(&data),
            concat!(
                "874d6191b620e3261bef6864990db6ce",
                "9806f66b7970fdff8617187bb9fffdff",
                "5ae4df3edbd5d35e5b4f09020db03eab",
                "1e031dda2fbe03d1792170a0f3009cee",
            )
        );
        aes.ctr_apply(&counter, &mut data);
        assert_eq!(data, nist_plaintext());
    }

    #[test]
    fn fast_path_matches_reference_blocks() {
        // Deterministic pseudo-random keys/blocks; the proptest suite in
        // tests/properties.rs covers truly random ones.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let mut key = [0u8; 16];
            let mut block = [0u8; 16];
            for c in key.chunks_mut(8) {
                c.copy_from_slice(&next().to_be_bytes());
            }
            for c in block.chunks_mut(8) {
                c.copy_from_slice(&next().to_be_bytes());
            }
            let aes = Aes128::new(&key);
            let mut fast = block;
            aes.encrypt_block(&mut fast);
            let mut slow = block;
            reference::encrypt_block(&aes, &mut slow);
            assert_eq!(fast, slow, "encrypt diverged for key {key:02x?}");
            let mut fast_d = fast;
            aes.decrypt_block(&mut fast_d);
            let mut slow_d = slow;
            reference::decrypt_block(&aes, &mut slow_d);
            assert_eq!(fast_d, block);
            assert_eq!(slow_d, block);
        }
    }

    #[test]
    fn reference_mode_switches_implementation_not_output() {
        let aes = Aes128::new(b"0123456789abcdef");
        let iv = *b"fedcba9876543210";
        let msg: Vec<u8> = (0..777).map(|i| (i * 13 % 256) as u8).collect();
        let fast_ct = aes.cbc_encrypt(&iv, &msg);
        let mut fast_ctr = msg.clone();
        aes.ctr_apply(&iv, &mut fast_ctr);
        set_reference_mode(true);
        let ref_ct = aes.cbc_encrypt(&iv, &msg);
        let mut ref_ctr = msg.clone();
        aes.ctr_apply(&iv, &mut ref_ctr);
        let ref_pt = aes.cbc_decrypt(&iv, &fast_ct);
        set_reference_mode(false);
        assert_eq!(fast_ct, ref_ct, "CBC fast path must be byte-identical");
        assert_eq!(fast_ctr, ref_ctr, "CTR fast path must be byte-identical");
        assert_eq!(ref_pt.as_deref(), Some(&msg[..]), "cross decrypt");
        assert_eq!(aes.cbc_decrypt(&iv, &ref_ct).as_deref(), Some(&msg[..]));
    }

    #[test]
    fn cbc_round_trip_various_lengths() {
        let aes = Aes128::new(b"0123456789abcdef");
        let iv = *b"fedcba9876543210";
        for len in [0usize, 1, 15, 16, 17, 31, 32, 100, 1500] {
            let msg: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
            let ct = aes.cbc_encrypt(&iv, &msg);
            assert_eq!(ct.len() % BLOCK_LEN, 0);
            assert!(ct.len() > msg.len(), "padding always adds bytes");
            let pt = aes.cbc_decrypt(&iv, &ct).unwrap();
            assert_eq!(pt, msg, "len={len}");
        }
    }

    #[test]
    fn cbc_rejects_malformed() {
        let aes = Aes128::new(b"0123456789abcdef");
        let iv = [0u8; 16];
        assert!(aes.cbc_decrypt(&iv, &[]).is_none());
        assert!(aes.cbc_decrypt(&iv, &[0u8; 15]).is_none());
        // Random data is overwhelmingly unlikely to have valid padding with
        // this fixed vector (checked: it doesn't).
        let garbage = [0x5au8; 32];
        let result = aes.cbc_decrypt(&iv, &garbage);
        if let Some(pt) = result {
            assert!(pt.len() < 32);
        }
    }

    #[test]
    fn cbc_wrong_iv_garbles_first_block_only() {
        let aes = Aes128::new(b"0123456789abcdef");
        let msg = vec![0xabu8; 48];
        let ct = aes.cbc_encrypt(&[0u8; 16], &msg);
        if let Some(pt) = aes.cbc_decrypt(&[1u8; 16], &ct) {
            assert_ne!(pt[..16], msg[..16]);
            assert_eq!(pt[16..], msg[16..pt.len()]);
        }
    }

    #[test]
    fn ctr_round_trip_and_symmetry() {
        let aes = Aes128::new(b"0123456789abcdef");
        let nonce = [7u8; 16];
        let msg: Vec<u8> = (0..1000).map(|i| (i % 256) as u8).collect();
        let mut data = msg.clone();
        aes.ctr_apply(&nonce, &mut data);
        assert_ne!(data, msg);
        aes.ctr_apply(&nonce, &mut data);
        assert_eq!(data, msg);
    }

    #[test]
    fn ctr_counter_increments_across_blocks() {
        let aes = Aes128::new(b"0123456789abcdef");
        let nonce = [0u8; 16];
        let mut a = vec![0u8; 32];
        aes.ctr_apply(&nonce, &mut a);
        // Second block keystream must differ from the first.
        assert_ne!(a[..16], a[16..]);
    }

    #[test]
    fn ctr_counter_wraps_carry() {
        // Trailing counter 0xffffffff must carry into a wrap, matching
        // the reference path bit-for-bit.
        let aes = Aes128::new(b"0123456789abcdef");
        let mut nonce = [9u8; 16];
        nonce[12..].copy_from_slice(&0xffff_ffffu32.to_be_bytes());
        let mut fast = vec![0u8; 50];
        aes.ctr_apply(&nonce, &mut fast);
        let mut slow = vec![0u8; 50];
        set_reference_mode(true);
        aes.ctr_apply(&nonce, &mut slow);
        set_reference_mode(false);
        assert_eq!(fast, slow);
    }
}
