//! AES-128 (FIPS 197) with CBC and CTR modes.
//!
//! This is the symmetric cipher for the HIP ESP-BEET data plane and the
//! TLS record layer. The implementation is a straightforward table-free
//! byte-oriented one: clarity over speed (the simulator charges data-plane
//! cost through its calibrated cost model, not through this code's own
//! wall-clock).

/// AES block size in bytes.
pub const BLOCK_LEN: usize = 16;
/// AES-128 key size in bytes.
pub const KEY_LEN: usize = 16;

const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Inverse S-box, generated once at first use.
fn inv_sbox() -> &'static [u8; 256] {
    use std::sync::OnceLock;
    static INV: OnceLock<[u8; 256]> = OnceLock::new();
    INV.get_or_init(|| {
        let mut inv = [0u8; 256];
        for (i, &s) in SBOX.iter().enumerate() {
            inv[s as usize] = i as u8;
        }
        inv
    })
}

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

fn gmul(a: u8, b: u8) -> u8 {
    let mut a = a;
    let mut b = b;
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// An expanded AES-128 key (11 round keys).
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl Aes128 {
    /// Expands a 16-byte key.
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Aes128 { round_keys }
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        add_round_key(block, &self.round_keys[0]);
        for round in 1..10 {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[10]);
    }

    /// Decrypts one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        add_round_key(block, &self.round_keys[10]);
        inv_shift_rows(block);
        inv_sub_bytes(block);
        for round in (1..10).rev() {
            add_round_key(block, &self.round_keys[round]);
            inv_mix_columns(block);
            inv_shift_rows(block);
            inv_sub_bytes(block);
        }
        add_round_key(block, &self.round_keys[0]);
    }

    /// CBC encryption with PKCS#7 padding. Output is a multiple of 16 bytes
    /// and always at least one block longer than an exact-multiple input.
    pub fn cbc_encrypt(&self, iv: &[u8; BLOCK_LEN], plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        self.cbc_encrypt_into(iv, plaintext, &mut out);
        out
    }

    /// Like [`Self::cbc_encrypt`], but *appends* the ciphertext to `out`
    /// (which is not cleared), so callers can pool one buffer per
    /// association or prepend a header before the ciphertext.
    pub fn cbc_encrypt_into(&self, iv: &[u8; BLOCK_LEN], plaintext: &[u8], out: &mut Vec<u8>) {
        let start = out.len();
        let pad = BLOCK_LEN - plaintext.len() % BLOCK_LEN;
        out.reserve(plaintext.len() + pad);
        out.extend_from_slice(plaintext);
        out.extend(std::iter::repeat_n(pad as u8, pad));
        let mut prev = *iv;
        for chunk in out[start..].chunks_mut(BLOCK_LEN) {
            let block: &mut [u8; BLOCK_LEN] = chunk.try_into().unwrap();
            for i in 0..BLOCK_LEN {
                block[i] ^= prev[i];
            }
            self.encrypt_block(block);
            prev = *block;
        }
    }

    /// CBC decryption undoing PKCS#7 padding. Returns `None` on malformed
    /// input (length not a block multiple, or invalid padding).
    pub fn cbc_decrypt(&self, iv: &[u8; BLOCK_LEN], ciphertext: &[u8]) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        if self.cbc_decrypt_into(iv, ciphertext, &mut out) {
            Some(out)
        } else {
            None
        }
    }

    /// Like [`Self::cbc_decrypt`], but *appends* the plaintext to `out`.
    /// Returns false (leaving `out` as it was) on malformed input.
    pub fn cbc_decrypt_into(&self, iv: &[u8; BLOCK_LEN], ciphertext: &[u8], out: &mut Vec<u8>) -> bool {
        if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(BLOCK_LEN) {
            return false;
        }
        let start = out.len();
        out.extend_from_slice(ciphertext);
        let mut prev = *iv;
        for chunk in out[start..].chunks_mut(BLOCK_LEN) {
            let block: &mut [u8; BLOCK_LEN] = chunk.try_into().unwrap();
            let saved = *block;
            self.decrypt_block(block);
            for i in 0..BLOCK_LEN {
                block[i] ^= prev[i];
            }
            prev = saved;
        }
        let pad = out[out.len() - 1] as usize;
        if pad == 0 || pad > BLOCK_LEN || pad > out.len() - start
            || !out[out.len() - pad..].iter().all(|&b| b == pad as u8)
        {
            out.truncate(start);
            return false;
        }
        out.truncate(out.len() - pad);
        true
    }

    /// CTR-mode keystream XOR (encryption and decryption are identical).
    /// The 16-byte `nonce_counter` is the initial counter block; the final
    /// 32 bits are incremented per block.
    pub fn ctr_apply(&self, nonce_counter: &[u8; BLOCK_LEN], data: &mut [u8]) {
        let mut counter = *nonce_counter;
        for chunk in data.chunks_mut(BLOCK_LEN) {
            let mut keystream = counter;
            self.encrypt_block(&mut keystream);
            for (d, k) in chunk.iter_mut().zip(keystream.iter()) {
                *d ^= k;
            }
            // Increment the trailing 32-bit counter.
            for i in (BLOCK_LEN - 4..BLOCK_LEN).rev() {
                counter[i] = counter[i].wrapping_add(1);
                if counter[i] != 0 {
                    break;
                }
            }
        }
    }
}

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn inv_sub_bytes(state: &mut [u8; 16]) {
    let inv = inv_sbox();
    for b in state.iter_mut() {
        *b = inv[*b as usize];
    }
}

// State is column-major: state[4*c + r] is row r, column c.
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = s[4 * ((c + r) % 4) + r];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * ((c + r) % 4) + r] = s[4 * c + r];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
        state[4 * c] = xtime(col[0]) ^ (xtime(col[1]) ^ col[1]) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ xtime(col[1]) ^ (xtime(col[2]) ^ col[2]) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ (xtime(col[3]) ^ col[3]);
        state[4 * c + 3] = (xtime(col[0]) ^ col[0]) ^ col[1] ^ col[2] ^ xtime(col[3]);
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
        state[4 * c] = gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
        state[4 * c + 1] = gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
        state[4 * c + 2] = gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
        state[4 * c + 3] = gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips197_appendix_b() {
        // FIPS 197 Appendix B worked example.
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let mut block: [u8; 16] = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let aes = Aes128::new(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(hex(&block), "3925841d02dc09fbdc118597196a0b32");
        aes.decrypt_block(&mut block);
        assert_eq!(hex(&block), "3243f6a8885a308d313198a2e0370734");
    }

    #[test]
    fn fips197_appendix_c1() {
        let key: [u8; 16] = (0u8..16).collect::<Vec<_>>().try_into().unwrap();
        let mut block: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        Aes128::new(&key).encrypt_block(&mut block);
        assert_eq!(hex(&block), "69c4e0d86a7b0430d8cdb78070b4c55a");
    }

    #[test]
    fn cbc_round_trip_various_lengths() {
        let aes = Aes128::new(b"0123456789abcdef");
        let iv = *b"fedcba9876543210";
        for len in [0usize, 1, 15, 16, 17, 31, 32, 100, 1500] {
            let msg: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
            let ct = aes.cbc_encrypt(&iv, &msg);
            assert_eq!(ct.len() % BLOCK_LEN, 0);
            assert!(ct.len() > msg.len(), "padding always adds bytes");
            let pt = aes.cbc_decrypt(&iv, &ct).unwrap();
            assert_eq!(pt, msg, "len={len}");
        }
    }

    #[test]
    fn cbc_rejects_malformed() {
        let aes = Aes128::new(b"0123456789abcdef");
        let iv = [0u8; 16];
        assert!(aes.cbc_decrypt(&iv, &[]).is_none());
        assert!(aes.cbc_decrypt(&iv, &[0u8; 15]).is_none());
        // Random data is overwhelmingly unlikely to have valid padding with
        // this fixed vector (checked: it doesn't).
        let garbage = [0x5au8; 32];
        let result = aes.cbc_decrypt(&iv, &garbage);
        if let Some(pt) = result {
            assert!(pt.len() < 32);
        }
    }

    #[test]
    fn cbc_wrong_iv_garbles_first_block_only() {
        let aes = Aes128::new(b"0123456789abcdef");
        let msg = vec![0xabu8; 48];
        let ct = aes.cbc_encrypt(&[0u8; 16], &msg);
        if let Some(pt) = aes.cbc_decrypt(&[1u8; 16], &ct) {
            assert_ne!(pt[..16], msg[..16]);
            assert_eq!(pt[16..], msg[16..pt.len()]);
        }
    }

    #[test]
    fn ctr_round_trip_and_symmetry() {
        let aes = Aes128::new(b"0123456789abcdef");
        let nonce = [7u8; 16];
        let msg: Vec<u8> = (0..1000).map(|i| (i % 256) as u8).collect();
        let mut data = msg.clone();
        aes.ctr_apply(&nonce, &mut data);
        assert_ne!(data, msg);
        aes.ctr_apply(&nonce, &mut data);
        assert_eq!(data, msg);
    }

    #[test]
    fn ctr_counter_increments_across_blocks() {
        let aes = Aes128::new(b"0123456789abcdef");
        let nonce = [0u8; 16];
        let mut a = vec![0u8; 32];
        aes.ctr_apply(&nonce, &mut a);
        // Second block keystream must differ from the first.
        assert_ne!(a[..16], a[16..]);
    }
}
