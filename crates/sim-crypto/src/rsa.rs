//! RSA key generation, signing and verification.
//!
//! HIP Host Identifiers (HIs) are RSA public keys (RFC 5201 uses
//! RSA/SHA-1 or RSA/SHA-256 host identities); all HIP control packets are
//! signed with them, and the TLS baseline uses the same keys for its
//! certificates so the two protocols pay identical asymmetric costs.
//!
//! Signature scheme: PKCS#1 v1.5-style — SHA-256 digest, DER-ish prefix,
//! `00 01 FF..FF 00 || prefix || digest` padded to the modulus size, then
//! RSA with the private exponent (accelerated via CRT).

use crate::bigint::BigUint;
use crate::prime::generate_rsa_factor;
use crate::sha256::sha256;
use rand::Rng;

/// The ASN.1 DigestInfo prefix for SHA-256 (PKCS#1 v1.5).
const SHA256_PREFIX: [u8; 19] = [
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02, 0x01,
    0x05, 0x00, 0x04, 0x20,
];

/// An RSA public key `(n, e)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
}

/// An RSA private key with CRT parameters.
#[derive(Clone)]
pub struct RsaPrivateKey {
    public: RsaPublicKey,
    /// Full private exponent; CRT parameters below are used for signing,
    /// `d` is retained for cross-checking (see the keygen test).
    #[cfg_attr(not(test), allow(dead_code))]
    d: BigUint,
    p: BigUint,
    q: BigUint,
    dp: BigUint,
    dq: BigUint,
    qinv: BigUint,
}

/// An RSA key pair.
#[derive(Clone)]
pub struct RsaKeyPair {
    private: RsaPrivateKey,
}

impl RsaPublicKey {
    /// Modulus size in bytes (the signature length).
    pub fn modulus_len(&self) -> usize {
        self.n.to_bytes_be().len()
    }

    /// Modulus size in bits.
    pub fn modulus_bits(&self) -> usize {
        self.n.bits()
    }

    /// Serializes as `len(n) || n || len(e) || e` (big-endian u32 lengths).
    /// This is the canonical byte form hashed into a HIT.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.n.to_bytes_be();
        let e = self.e.to_bytes_be();
        let mut out = Vec::with_capacity(8 + n.len() + e.len());
        out.extend_from_slice(&(n.len() as u32).to_be_bytes());
        out.extend_from_slice(&n);
        out.extend_from_slice(&(e.len() as u32).to_be_bytes());
        out.extend_from_slice(&e);
        out
    }

    /// Parses the serialization produced by [`Self::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        if data.len() < 4 {
            return None;
        }
        let n_len = u32::from_be_bytes(data[..4].try_into().ok()?) as usize;
        let rest = &data[4..];
        if rest.len() < n_len + 4 {
            return None;
        }
        let n = BigUint::from_bytes_be(&rest[..n_len]);
        let rest = &rest[n_len..];
        let e_len = u32::from_be_bytes(rest[..4].try_into().ok()?) as usize;
        let rest = &rest[4..];
        if rest.len() < e_len {
            return None;
        }
        let e = BigUint::from_bytes_be(&rest[..e_len]);
        if n.is_zero() || e.is_zero() {
            return None;
        }
        Some(RsaPublicKey { n, e })
    }

    /// Verifies a PKCS#1 v1.5 SHA-256 signature over `message`.
    pub fn verify(&self, message: &[u8], signature: &[u8]) -> bool {
        let k = self.modulus_len();
        if signature.len() != k {
            return false;
        }
        let s = BigUint::from_bytes_be(signature);
        if s.cmp_mag(&self.n) != std::cmp::Ordering::Less {
            return false;
        }
        let em = s.modpow(&self.e, &self.n).to_bytes_be_padded(k);
        em == encode_pkcs1(&sha256(message), k)
    }
}

impl RsaKeyPair {
    /// Generates a fresh key pair with a modulus of about `bits` bits and
    /// public exponent 65537.
    ///
    /// # Panics
    /// Panics if `bits < 32`.
    pub fn generate<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Self {
        assert!(bits >= 32, "RSA modulus too small");
        let e = BigUint::from_u64(65537);
        loop {
            let p = generate_rsa_factor(bits / 2, &e, rng);
            let q = generate_rsa_factor(bits - bits / 2, &e, rng);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            let one = BigUint::one();
            let phi = p.sub(&one).mul(&q.sub(&one));
            let Some(d) = e.modinv(&phi) else { continue };
            let dp = d.rem(&p.sub(&one));
            let dq = d.rem(&q.sub(&one));
            let Some(qinv) = q.modinv(&p) else { continue };
            return RsaKeyPair {
                private: RsaPrivateKey {
                    public: RsaPublicKey { n, e },
                    d,
                    p,
                    q,
                    dp,
                    dq,
                    qinv,
                },
            };
        }
    }

    /// The public half.
    pub fn public(&self) -> &RsaPublicKey {
        &self.private.public
    }

    /// Signs `message` (PKCS#1 v1.5, SHA-256). Output length equals the
    /// modulus length.
    pub fn sign(&self, message: &[u8]) -> Vec<u8> {
        let k = self.public().modulus_len();
        let em = encode_pkcs1(&sha256(message), k);
        let m = BigUint::from_bytes_be(&em);
        self.private.crt_exp(&m).to_bytes_be_padded(k)
    }
}

impl RsaPrivateKey {
    /// `m^d mod n` via the Chinese Remainder Theorem (≈4x faster than a
    /// straight exponentiation with the full-size exponent).
    fn crt_exp(&self, m: &BigUint) -> BigUint {
        let m1 = m.modpow(&self.dp, &self.p);
        let m2 = m.modpow(&self.dq, &self.q);
        // h = qinv * (m1 - m2) mod p
        let diff = if m1.cmp_mag(&m2) != std::cmp::Ordering::Less {
            m1.sub(&m2)
        } else {
            // (m1 - m2) mod p with borrow from p
            let deficit = m2.sub(&m1).rem(&self.p);
            if deficit.is_zero() { deficit } else { self.p.sub(&deficit) }
        };
        let h = self.qinv.mulmod(&diff, &self.p);
        m2.add(&h.mul(&self.q))
    }
}

/// EMSA-PKCS1-v1_5 encoding of a SHA-256 digest into `k` bytes.
fn encode_pkcs1(digest: &[u8; 32], k: usize) -> Vec<u8> {
    let t_len = SHA256_PREFIX.len() + digest.len();
    assert!(k >= t_len + 11, "modulus too small for PKCS#1 SHA-256");
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x01);
    em.extend(std::iter::repeat_n(0xffu8, k - t_len - 3));
    em.push(0x00);
    em.extend_from_slice(&SHA256_PREFIX);
    em.extend_from_slice(digest);
    em
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn sign_verify_round_trip() {
        let mut r = rng();
        let kp = RsaKeyPair::generate(512, &mut r);
        let msg = b"the host identity protocol";
        let sig = kp.sign(msg);
        assert_eq!(sig.len(), kp.public().modulus_len());
        assert!(kp.public().verify(msg, &sig));
    }

    #[test]
    fn verify_rejects_tampered_message() {
        let mut r = rng();
        let kp = RsaKeyPair::generate(512, &mut r);
        let sig = kp.sign(b"original");
        assert!(!kp.public().verify(b"tampered", &sig));
    }

    #[test]
    fn verify_rejects_tampered_signature() {
        let mut r = rng();
        let kp = RsaKeyPair::generate(512, &mut r);
        let mut sig = kp.sign(b"message");
        sig[10] ^= 0x01;
        assert!(!kp.public().verify(b"message", &sig));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let mut r = rng();
        let kp1 = RsaKeyPair::generate(512, &mut r);
        let kp2 = RsaKeyPair::generate(512, &mut r);
        let sig = kp1.sign(b"message");
        assert!(!kp2.public().verify(b"message", &sig));
    }

    #[test]
    fn verify_rejects_wrong_length() {
        let mut r = rng();
        let kp = RsaKeyPair::generate(512, &mut r);
        let sig = kp.sign(b"message");
        assert!(!kp.public().verify(b"message", &sig[..sig.len() - 1]));
        let mut long = sig;
        long.push(0);
        assert!(!kp.public().verify(b"message", &long));
    }

    #[test]
    fn public_key_bytes_round_trip() {
        let mut r = rng();
        let kp = RsaKeyPair::generate(512, &mut r);
        let bytes = kp.public().to_bytes();
        let parsed = RsaPublicKey::from_bytes(&bytes).unwrap();
        assert_eq!(&parsed, kp.public());
        // Truncated input is rejected.
        assert!(RsaPublicKey::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        assert!(RsaPublicKey::from_bytes(&[]).is_none());
    }

    #[test]
    fn keygen_produces_working_crt() {
        // Cross-check CRT exponentiation against plain d exponentiation.
        let mut r = rng();
        let kp = RsaKeyPair::generate(256, &mut r);
        let m = BigUint::from_u64(0x1234_5678);
        let crt = kp.private.crt_exp(&m);
        let plain = m.modpow(&kp.private.d, &kp.private.public.n);
        assert_eq!(crt, plain);
    }

    #[test]
    fn different_keys_for_different_seeds() {
        let kp1 = RsaKeyPair::generate(256, &mut rand::rngs::StdRng::seed_from_u64(1));
        let kp2 = RsaKeyPair::generate(256, &mut rand::rngs::StdRng::seed_from_u64(2));
        assert_ne!(kp1.public(), kp2.public());
    }
}
