//! Probabilistic prime generation (trial division + Miller–Rabin),
//! used by the RSA key generator.

use crate::bigint::BigUint;
use rand::Rng;

/// Small primes for cheap trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 46] = [
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211,
];

/// Miller–Rabin primality test with `rounds` random bases.
///
/// Deterministically handles small inputs; for the key sizes used here
/// (≥256 bits) 20 rounds gives an error probability below 2^-40.
pub fn is_probable_prime<R: Rng + ?Sized>(n: &BigUint, rounds: u32, rng: &mut R) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    let two = BigUint::from_u64(2);
    if n == &two {
        return true;
    }
    if n.is_even() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let pb = BigUint::from_u64(p);
        if n == &pb {
            return true;
        }
        if n.rem(&pb).is_zero() {
            return false;
        }
    }
    // Write n-1 = d * 2^s with d odd.
    let n_minus_1 = n.sub(&BigUint::one());
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = d.shr(1);
        s += 1;
    }
    'witness: for _ in 0..rounds {
        // Random base in [2, n-2].
        let a = loop {
            let a = BigUint::random_below(rng, &n_minus_1);
            if !a.is_zero() && !a.is_one() {
                break a;
            }
        };
        let mut x = a.modpow(&d, n);
        if x.is_one() || x == n_minus_1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = x.mulmod(&x, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime with exactly `bits` bits.
///
/// # Panics
/// Panics if `bits < 8`.
pub fn generate_prime<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> BigUint {
    assert!(bits >= 8, "prime size too small");
    loop {
        let mut candidate = BigUint::random_exact_bits(rng, bits);
        // Force odd.
        if candidate.is_even() {
            candidate = candidate.add(&BigUint::one());
        }
        if is_probable_prime(&candidate, 20, rng) {
            return candidate;
        }
    }
}

/// Generates a "safe-enough" prime `p` such that `gcd(p-1, e) == 1`,
/// as required for an RSA factor with public exponent `e`.
pub fn generate_rsa_factor<R: Rng + ?Sized>(bits: usize, e: &BigUint, rng: &mut R) -> BigUint {
    loop {
        let p = generate_prime(bits, rng);
        if p.sub(&BigUint::one()).gcd(e).is_one() {
            return p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    #[test]
    fn small_primes_recognized() {
        let mut r = rng();
        for p in [2u64, 3, 5, 7, 11, 13, 97, 101, 211, 65537] {
            assert!(is_probable_prime(&BigUint::from_u64(p), 10, &mut r), "{p}");
        }
    }

    #[test]
    fn small_composites_rejected() {
        let mut r = rng();
        for c in [0u64, 1, 4, 6, 9, 15, 21, 91, 561, 41041, 825265] {
            // 561, 41041, 825265 are Carmichael numbers.
            assert!(!is_probable_prime(&BigUint::from_u64(c), 10, &mut r), "{c}");
        }
    }

    #[test]
    fn known_large_prime() {
        // 2^127 - 1 is a Mersenne prime.
        let p = BigUint::one().shl(127).sub(&BigUint::one());
        assert!(is_probable_prime(&p, 20, &mut rng()));
        // 2^128 - 1 is composite.
        let c = BigUint::one().shl(128).sub(&BigUint::one());
        assert!(!is_probable_prime(&c, 20, &mut rng()));
    }

    #[test]
    fn generated_primes_have_requested_size() {
        let mut r = rng();
        for bits in [64usize, 128, 256] {
            let p = generate_prime(bits, &mut r);
            assert_eq!(p.bits(), bits);
            assert!(is_probable_prime(&p, 20, &mut r));
        }
    }

    #[test]
    fn rsa_factor_coprime_to_e() {
        let mut r = rng();
        let e = BigUint::from_u64(65537);
        let p = generate_rsa_factor(128, &e, &mut r);
        assert!(p.sub(&BigUint::one()).gcd(&e).is_one());
    }
}
