//! Workspace-spanning integration tests: every layer at once — crypto,
//! network, HIP, TLS, cloud, web service — exercised through the public
//! `hipcloud` umbrella crate, the way a downstream user would.

use hipcloud::cloud::{CloudKind, CloudTopology, Flavor};
use hipcloud::hip::identity::HostIdentity;
use hipcloud::hip::{HipConfig, HipShim, PeerInfo};
use hipcloud::net::host::{App, AppEvent, HostApi};
use hipcloud::net::{SimDuration, SimTime, TcpEvent};
use hipcloud::web::deploy::{deploy_rubis, RubisConfig};
use hipcloud::web::loadgen::JmeterApp;
use hipcloud::web::rubis::WorkloadMix;
use hipcloud::web::Scenario;
use rand::SeedableRng;
use std::any::Any;
use std::net::IpAddr;

struct Echo;
impl App for Echo {
    fn start(&mut self, api: &mut HostApi) {
        api.tcp_listen(7);
    }
    fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
        if let AppEvent::Tcp(TcpEvent::Data(s)) = ev {
            let d = api.tcp_recv(s);
            api.tcp_send(s, &d);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct Caller {
    target: IpAddr,
    reply: Vec<u8>,
}
impl App for Caller {
    fn start(&mut self, api: &mut HostApi) {
        api.tcp_connect(self.target, 7);
    }
    fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
        match ev {
            AppEvent::Tcp(TcpEvent::Connected(s)) => api.tcp_send(s, b"through the whole stack"),
            AppEvent::Tcp(TcpEvent::Data(s)) => self.reply.extend(api.tcp_recv(s)),
            _ => {}
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// HIP across a hybrid cloud, built entirely from the umbrella exports.
#[test]
fn hip_across_hybrid_cloud_through_umbrella_crate() {
    let mut topo = CloudTopology::new(1);
    let public = topo.add_cloud("ec2", CloudKind::Public);
    let private = topo.add_cloud("onprem", CloudKind::Private);
    let a = topo.launch_vm(public, "a", Flavor::Micro);
    let b = topo.launch_vm(private, "b", Flavor::Large);

    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let id_a = HostIdentity::generate_rsa(512, &mut rng);
    let id_b = HostIdentity::generate_rsa(512, &mut rng);
    let (hit_a, hit_b) = (id_a.hit(), id_b.hit());
    let mut shim_a = HipShim::new(id_a, HipConfig::default());
    shim_a.add_peer(hit_b, PeerInfo { locators: vec![b.addr], via_rvs: None });
    let mut shim_b = HipShim::new(id_b, HipConfig::default());
    shim_b.add_peer(hit_a, PeerInfo { locators: vec![a.addr], via_rvs: None });
    topo.host_mut(a).set_shim(Box::new(shim_a));
    topo.host_mut(b).set_shim(Box::new(shim_b));
    topo.host_mut(a).add_app(Box::new(Caller { target: hit_b.to_ip(), reply: vec![] }));
    topo.host_mut(b).add_app(Box::new(Echo));

    topo.run_for(SimDuration::from_secs(5));
    assert_eq!(
        topo.host(a).app::<Caller>(0).expect("caller").reply,
        b"through the whole stack"
    );
    let shim = topo.host(a).shim::<HipShim>().expect("shim");
    assert!(shim.is_established(&hit_b));
    assert!(shim.stats.esp_bytes_out > 0);
}

/// The full RUBiS deployment completes real requests in each scenario.
#[test]
fn rubis_deployment_serves_each_scenario() {
    for scenario in [Scenario::Basic, Scenario::HipLsi, Scenario::Ssl] {
        let cfg = RubisConfig::fig2(scenario, 3);
        let (users, items) = (cfg.users, cfg.items);
        let mut dep = deploy_rubis(cfg);
        let gen = dep.topo.add_external_host("gen", Flavor::Dedicated);
        let mut app = JmeterApp::new(dep.frontend, 3, WorkloadMix::default(), users, items);
        app.measure_from = SimTime(1_000_000_000);
        let idx = dep.topo.host_mut(gen).add_app(Box::new(app));
        dep.topo.sim.run_until(SimTime(4_000_000_000));
        let completed = dep.topo.host(gen).app::<JmeterApp>(idx).expect("gen").completed;
        assert!(completed > 20, "{scenario:?}: only {completed} requests");
    }
}

/// DNS with HIP resource records: publish, resolve over the simulated
/// network, verify the advertised HIT matches the key, then use it.
#[test]
fn dns_discovers_hip_peers() {
    use hipcloud::hip::dns_ext;
    use hipcloud::net::dns::{RecordType, Zone};
    use hipcloud::web::dns_server::{DnsLookupApp, DnsServerApp};

    let mut topo = CloudTopology::new(4);
    let cloud = topo.add_cloud("ec2", CloudKind::Public);
    let server_vm = topo.launch_vm(cloud, "web1", Flavor::Micro);
    let dns_vm = topo.launch_vm(cloud, "dns", Flavor::Small);
    let client_vm = topo.launch_vm(cloud, "client", Flavor::Micro);

    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let id = HostIdentity::generate_rsa(512, &mut rng);
    let mut zone = Zone::new();
    dns_ext::publish(&mut zone, "web1.cloud", id.public(), &[server_vm.addr], vec![]);
    topo.host_mut(dns_vm).add_app(Box::new(DnsServerApp::new(zone)));
    let lookup = topo
        .host_mut(client_vm)
        .add_app(Box::new(DnsLookupApp::new(dns_vm.addr, "web1.cloud", RecordType::Any)));

    topo.run_for(SimDuration::from_secs(2));
    let app = topo.host(client_vm).app::<DnsLookupApp>(lookup).expect("lookup");
    assert!(app.responded);
    // Rebuild a zone from the answers and resolve with verification.
    let mut answer_zone = Zone::new();
    for rec in &app.answers {
        answer_zone.add("web1.cloud", rec.clone());
    }
    let peer = dns_ext::resolve(&answer_zone, "web1.cloud").expect("verifies");
    assert_eq!(peer.hit, id.hit());
    assert_eq!(peer.locators, vec![server_vm.addr]);
}

/// Determinism across the whole stack: same seed, same result.
#[test]
fn whole_stack_is_deterministic()  {
    let run = || {
        let cfg = RubisConfig::fig2(Scenario::HipLsi, 77);
        let (users, items) = (cfg.users, cfg.items);
        let mut dep = deploy_rubis(cfg);
        let gen = dep.topo.add_external_host("gen", Flavor::Dedicated);
        let idx = dep
            .topo
            .host_mut(gen)
            .add_app(Box::new(JmeterApp::new(dep.frontend, 5, WorkloadMix::default(), users, items)));
        dep.topo.sim.run_until(SimTime(3_000_000_000));
        dep.topo.host(gen).app::<JmeterApp>(idx).expect("gen").completed
    };
    assert_eq!(run(), run());
}
