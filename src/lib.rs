//! # hipcloud
//!
//! A full Rust reproduction of **"Secure Networking for Virtual Machines
//! in the Cloud"** (Komu, Sethi, Mallavarapu, Oirola, Khan, Tarkoma —
//! IEEE CLUSTER 2012): the Host Identity Protocol deployed *inside* IaaS
//! clouds, with a reverse HTTP proxy terminating HIP toward consumers.
//!
//! This crate is the umbrella: it re-exports the workspace layers so the
//! examples and downstream users need a single dependency.
//!
//! | layer | crate | what it is |
//! |---|---|---|
//! | [`crypto`] | `sim-crypto` | from-scratch RSA/DH/ECDSA/AES/SHA-256 |
//! | [`net`] | `netsim` | deterministic packet-level network simulator |
//! | [`hip`] | `hip-core` | **the paper's contribution**: the HIP stack |
//! | [`tls`] | `tls-sim` | the SSL baseline |
//! | [`cloud`] | `cloudsim` | EC2/OpenNebula-like IaaS substrate |
//! | [`web`] | `websvc` | RUBiS, HAProxy-like LB, jmeter/httperf/iperf |
//!
//! ## Quickstart
//!
//! Run the smallest end-to-end demo — two VMs, a base exchange, and a
//! TCP conversation through an ESP tunnel:
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Reproduce the paper's evaluation:
//!
//! ```bash
//! cargo run -p bench --release --bin fig2_throughput
//! cargo run -p bench --release --bin tab_response_times
//! cargo run -p bench --release --bin fig3_iperf_rtt
//! cargo bench --workspace
//! ```

#![warn(missing_docs)]

/// Cryptographic primitives (re-export of `sim-crypto`).
pub use sim_crypto as crypto;

/// The network simulator (re-export of `netsim`).
pub use netsim as net;

/// The Host Identity Protocol implementation (re-export of `hip-core`).
pub use hip_core as hip;

/// The TLS baseline (re-export of `tls-sim`).
pub use tls_sim as tls;

/// The IaaS cloud simulator (re-export of `cloudsim`).
pub use cloudsim as cloud;

/// The web-service substrate and load generators (re-export of `websvc`).
pub use websvc as web;

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_line_up() {
        // A HIT produced through the umbrella path is ORCHID-classified
        // by the network layer's address helpers.
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        let id = crate::hip::identity::HostIdentity::generate_rsa(512, &mut rng);
        assert!(crate::net::addr::is_hit(&id.hit().to_ip()));
    }
}
