//! The paper's headline deployment (Figure 1): an eBay-like auction
//! service distributed over a public IaaS cloud, secured with HIP, and
//! fronted by a reverse HTTP proxy so consumers need no HIP at all.
//!
//! ```text
//! jmeter clients ──plain HTTP──> HAProxy-like LB ──HIP/ESP──> 3× web VMs ──HIP/ESP──> MySQL-like DB
//! ```
//!
//! ```bash
//! cargo run --release --example multi_tenant_auction [basic|hip|ssl] [clients]
//! ```

use hipcloud::cloud::Flavor;
use hipcloud::net::{SimDuration, SimTime};
use hipcloud::web::db::DbServerApp;
use hipcloud::web::deploy::{deploy_rubis, RubisConfig};
use hipcloud::web::loadgen::JmeterApp;
use hipcloud::web::rubis::WorkloadMix;
use hipcloud::web::webserver::WebServerApp;
use hipcloud::web::Scenario;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scenario = match args.get(1).map(String::as_str) {
        Some("basic") => Scenario::Basic,
        Some("ssl") => Scenario::Ssl,
        Some("hip") | None => Scenario::HipLsi,
        Some(other) => {
            eprintln!("unknown scenario {other:?} — expected basic, hip or ssl");
            std::process::exit(2);
        }
    };
    let clients: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(20);

    println!("deploying RUBiS in the simulated EC2 — scenario: {} ...", scenario.label());
    let cfg = RubisConfig::fig2(scenario, 2026);
    let (users, items) = (cfg.users, cfg.items);
    let mut dep = deploy_rubis(cfg);
    println!("  db  (m1.large): {}", dep.db.addr);
    for (i, w) in dep.webs.iter().enumerate() {
        println!("  web{i} (t1.micro): {}", w.addr);
    }
    if let Some(lb) = dep.lb {
        println!("  lb  (outside the cloud): {}:{}", lb.addr, dep.frontend.1);
    }

    let gen_host = dep.topo.add_external_host("jmeter", Flavor::Dedicated);
    let warmup = SimDuration::from_secs(5);
    let measure = SimDuration::from_secs(15);
    let mut app = JmeterApp::new(dep.frontend, clients, WorkloadMix::default(), users, items);
    app.measure_from = SimTime::ZERO + warmup;
    let idx = dep.topo.host_mut(gen_host).add_app(Box::new(app));

    println!("\ndriving {clients} concurrent clients for {}s (+{}s warm-up)...", measure.as_secs_f64(), warmup.as_secs_f64());
    dep.topo.sim.run_until(SimTime::ZERO + warmup + measure);

    let gen = dep.topo.host(gen_host).app::<JmeterApp>(idx).expect("generator");
    println!("\nresults ({}):", scenario.label());
    println!("  throughput: {:.1} requests/second", gen.completed as f64 / measure.as_secs_f64());
    println!("  mean response time: {:.1} ms (p99 {:.1} ms)", gen.latency.mean(), gen.latency.percentile(99.0));

    println!("\nper-tier accounting:");
    for (i, w) in dep.webs.iter().enumerate() {
        let host = dep.topo.host(*w);
        let web = host.app::<WebServerApp>(0).expect("web app");
        print!(
            "  web{i}: {} requests, cpu busy {:.1}s",
            web.stats.requests,
            host.core.cpu.busy_time().as_secs_f64()
        );
        if let Some(shim) = host.shim::<hipcloud::hip::HipShim>() {
            print!(
                ", {} BEX, {} ESP packets",
                shim.stats.bex_completed,
                shim.stats.esp_in + shim.stats.esp_out
            );
        }
        println!();
    }
    let db = dep.topo.host(dep.db);
    let db_app = db.app::<DbServerApp>(0).expect("db app");
    println!(
        "  db:   {} queries ({} writes), cpu busy {:.1}s",
        db_app.stats.queries,
        db_app.stats.writes,
        db.core.cpu.busy_time().as_secs_f64()
    );
    if scenario.uses_hip() {
        println!("\nconsumers used plain HTTP; every hop inside the cloud rode HIP/ESP.");
    }
}
