//! Quickstart: the smallest end-to-end HIP deployment.
//!
//! Two VMs in a simulated EC2 region get cryptographic host identities,
//! run the HIP base exchange, and carry a TCP conversation through the
//! resulting ESP-BEET tunnel — the application addresses its peer by HIT
//! and never learns any of this is happening.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use hipcloud::cloud::{CloudKind, CloudTopology, Flavor};
use hipcloud::hip::identity::HostIdentity;
use hipcloud::hip::{HipConfig, HipShim, PeerInfo};
use hipcloud::net::host::{App, AppEvent, HostApi};
use hipcloud::net::{SimDuration, SimTime, TcpEvent};
use rand::SeedableRng;
use std::any::Any;
use std::net::IpAddr;

/// A tiny request/response app pair.
struct Server;
impl App for Server {
    fn start(&mut self, api: &mut HostApi) {
        api.tcp_listen(7777);
        println!("[server] listening on port 7777 (host {})", api.host_name());
    }
    fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
        if let AppEvent::Tcp(TcpEvent::Data(sock)) = ev {
            let msg = api.tcp_recv(sock);
            println!("[server] got {:?}", String::from_utf8_lossy(&msg));
            api.tcp_send(sock, b"hello from the other side of the tunnel");
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct Client {
    server_hit: IpAddr,
}
impl App for Client {
    fn start(&mut self, api: &mut HostApi) {
        println!("[client] connecting to HIT {} ...", self.server_hit);
        api.tcp_connect(self.server_hit, 7777).expect("HIT is routable via the shim");
    }
    fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
        match ev {
            AppEvent::Tcp(TcpEvent::Connected(sock)) => {
                println!("[client] connected (BEX done, SAs installed) at t={}s", api.now());
                api.tcp_send(sock, b"ping through ESP");
            }
            AppEvent::Tcp(TcpEvent::Data(sock)) => {
                let msg = api.tcp_recv(sock);
                println!("[client] got {:?} at t={}s", String::from_utf8_lossy(&msg), api.now());
            }
            _ => {}
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn main() {
    // 1. A public cloud with two micro VMs.
    let mut topo = CloudTopology::new(7);
    let cloud = topo.add_cloud("ec2", CloudKind::Public);
    let vm_a = topo.launch_vm(cloud, "client-vm", Flavor::Micro);
    let vm_b = topo.launch_vm(cloud, "server-vm", Flavor::Micro);

    // 2. Host identities: the public keys ARE the names.
    let mut key_rng = rand::rngs::StdRng::seed_from_u64(42);
    let id_a = HostIdentity::generate_rsa(1024, &mut key_rng);
    let id_b = HostIdentity::generate_rsa(1024, &mut key_rng);
    println!("client HIT: {}", id_a.hit());
    println!("server HIT: {}", id_b.hit());

    // 3. HIP shims, statically configured with each other's locator
    //    (DNS and rendezvous are the dynamic alternatives).
    let (hit_a, hit_b) = (id_a.hit(), id_b.hit());
    let mut shim_a = HipShim::new(id_a, HipConfig::default());
    shim_a.add_peer(hit_b, PeerInfo { locators: vec![vm_b.addr], via_rvs: None });
    let mut shim_b = HipShim::new(id_b, HipConfig::default());
    shim_b.add_peer(hit_a, PeerInfo { locators: vec![vm_a.addr], via_rvs: None });
    topo.host_mut(vm_a).set_shim(Box::new(shim_a));
    topo.host_mut(vm_b).set_shim(Box::new(shim_b));

    // 4. Apps talk TCP to a HIT as if it were any IPv6 address.
    topo.host_mut(vm_a).add_app(Box::new(Client { server_hit: hit_b.to_ip() }));
    topo.host_mut(vm_b).add_app(Box::new(Server));

    // 5. Run.
    topo.run_for(SimDuration::from_secs(3));

    // 6. Show what the shim did underneath.
    let shim = topo.host(vm_a).shim::<HipShim>().expect("shim");
    let s = shim.stats;
    println!("\nHIP layer on the client VM:");
    println!("  base exchanges completed: {}", s.bex_completed);
    println!("  ESP packets out/in:       {}/{}", s.esp_out, s.esp_in);
    println!("  ESP payload bytes out/in: {}/{}", s.esp_bytes_out, s.esp_bytes_in);
    println!("  auth/replay drops:        {}/{}", s.drops_auth, s.drops_replay);
    assert!(shim.is_established(&hit_b));
    let _ = SimTime::ZERO;
    println!("\nEverything the application sent crossed the wire as IPsec ESP.");
}
