//! Hybrid-cloud tenant isolation (§III-B, §IV-A): two competing tenants
//! share a public cloud; one of them also runs VMs in a private cloud.
//! Each VM admits only its own tenant's HITs (the hosts.allow model), so
//!
//! - intra-tenant traffic flows — encrypted — even across the WAN
//!   between the clouds (the hybrid case HIP secures), while
//! - the competitor cannot even complete a base exchange, despite
//!   sharing subnets and switches with its target.
//!
//! ```bash
//! cargo run --release --example hybrid_cloud
//! ```

use hipcloud::cloud::{CloudKind, CloudTopology, Flavor, TenantId, TenantRegistry};
use hipcloud::hip::identity::HostIdentity;
use hipcloud::hip::{HipConfig, HipShim, PeerInfo};
use hipcloud::net::host::{App, AppEvent, HostApi};
use hipcloud::net::{SimDuration, TcpEvent};
use rand::SeedableRng;
use std::any::Any;
use std::net::IpAddr;

struct EchoServer;
impl App for EchoServer {
    fn start(&mut self, api: &mut HostApi) {
        api.tcp_listen(9000);
    }
    fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
        if let AppEvent::Tcp(TcpEvent::Data(s)) = ev {
            let d = api.tcp_recv(s);
            api.tcp_send(s, &d);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct Probe {
    target: IpAddr,
    label: &'static str,
    replied: bool,
}
impl App for Probe {
    fn start(&mut self, api: &mut HostApi) {
        api.tcp_connect(self.target, 9000);
    }
    fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
        match ev {
            AppEvent::Tcp(TcpEvent::Connected(s)) => api.tcp_send(s, b"confidential business data"),
            AppEvent::Tcp(TcpEvent::Data(s)) => {
                let _ = api.tcp_recv(s);
                self.replied = true;
            }
            _ => {}
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn main() {
    let mut topo = CloudTopology::new(99);
    let public = topo.add_cloud("ec2", CloudKind::Public);
    let private = topo.add_cloud("on-prem", CloudKind::Private);

    // Tenant ACME: one VM in the public cloud, one in its private cloud
    // (the hybrid deployment). Tenant EVIL: a VM in the same public
    // cloud — a competing subscriber on shared infrastructure.
    let acme_pub = topo.launch_vm(public, "acme-frontend", Flavor::Micro);
    let acme_priv = topo.launch_vm(private, "acme-db", Flavor::Large);
    let evil_pub = topo.launch_vm(public, "evil-vm", Flavor::Micro);

    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let ids = [
        HostIdentity::generate_rsa(512, &mut rng),
        HostIdentity::generate_rsa(512, &mut rng),
        HostIdentity::generate_rsa(512, &mut rng),
    ];
    let [id_acme_pub, id_acme_priv, id_evil] = ids;

    // The tenant registry drives the isolation firewalls.
    let acme = TenantId(1);
    let evil = TenantId(2);
    let mut registry = TenantRegistry::new();
    registry.register(acme, acme_pub, id_acme_pub.hit());
    registry.register(acme, acme_priv, id_acme_priv.hit());
    registry.register(evil, evil_pub, id_evil.hit());

    let hit_acme_priv = id_acme_priv.hit();
    println!("tenant ACME: frontend {} + private DB {}", id_acme_pub.hit(), hit_acme_priv);
    println!("tenant EVIL: {}", id_evil.hit());

    // Shims. EVIL *does* know the victim's HIT and locator (HITs are
    // public!) — the firewall is what stops it.
    let mut shim_acme_pub = HipShim::new(id_acme_pub, HipConfig::default());
    shim_acme_pub.add_peer(hit_acme_priv, PeerInfo { locators: vec![acme_priv.addr], via_rvs: None });
    shim_acme_pub.firewall = registry.isolation_firewall(acme);

    let mut shim_acme_priv = HipShim::new(id_acme_priv, HipConfig::default());
    shim_acme_priv.firewall = registry.isolation_firewall(acme);

    let mut shim_evil = HipShim::new(id_evil, HipConfig::default());
    shim_evil.add_peer(hit_acme_priv, PeerInfo { locators: vec![acme_priv.addr], via_rvs: None });
    shim_evil.firewall = registry.isolation_firewall(evil);

    topo.host_mut(acme_pub).set_shim(Box::new(shim_acme_pub));
    topo.host_mut(acme_priv).set_shim(Box::new(shim_acme_priv));
    topo.host_mut(evil_pub).set_shim(Box::new(shim_evil));

    topo.host_mut(acme_priv).add_app(Box::new(EchoServer));
    let acme_probe = topo.host_mut(acme_pub).add_app(Box::new(Probe {
        target: hit_acme_priv.to_ip(),
        label: "ACME frontend -> ACME private DB (cross-cloud)",
        replied: false,
    }));
    let evil_probe = topo.host_mut(evil_pub).add_app(Box::new(Probe {
        target: hit_acme_priv.to_ip(),
        label: "EVIL VM -> ACME private DB",
        replied: false,
    }));

    println!("\nrunning 20 simulated seconds...\n");
    topo.run_for(SimDuration::from_secs(20));

    for (vm, idx) in [(acme_pub, acme_probe), (evil_pub, evil_probe)] {
        let probe = topo.host(vm).app::<Probe>(idx).expect("probe");
        println!(
            "{}: {}",
            probe.label,
            if probe.replied { "SUCCEEDED (over ESP, across the WAN)" } else { "BLOCKED" }
        );
    }
    let victim = topo.host(acme_priv).shim::<HipShim>().expect("shim");
    println!(
        "\nACME private DB firewall: {} exchanges denied, {} completed",
        victim.firewall.denied, victim.stats.bex_completed
    );
    assert!(topo.host(acme_pub).app::<Probe>(acme_probe).expect("p").replied);
    assert!(!topo.host(evil_pub).app::<Probe>(evil_probe).expect("p").replied);
    println!("tenants share the cloud; the HIT firewall keeps them apart.");
}
