//! The "power user" scenario (§IV-D): a cloud administrator works from
//! behind a consumer NAT. Raw HIP (IP protocol 139) and ESP (50) have no
//! ports for the NAT to translate, so they are simply dropped — which is
//! exactly why the paper runs HIP over **Teredo** (IPv6-in-UDP) for
//! NATted users. This example shows both halves:
//!
//! 1. native HIP through the NAT fails (the NAT drops protocol 139);
//! 2. HIP over Teredo succeeds: qualification through the NAT, the BEX
//!    and ESP inside UDP, and an SSH-like session to the VM.
//!
//! ```bash
//! cargo run --release --example nat_traversal
//! ```

use hipcloud::cloud::{CloudKind, CloudTopology, Flavor};
use hipcloud::hip::identity::HostIdentity;
use hipcloud::hip::{HipConfig, HipShim, PeerInfo};
use hipcloud::net::addr::teredo_address;
use hipcloud::net::host::{App, AppEvent, Host, HostApi};
use hipcloud::net::nat::{Nat, NatKind};
use hipcloud::net::teredo::{TeredoClient, TeredoRelay, TeredoServer, TEREDO_PORT};
use hipcloud::net::{Endpoint, LinkParams, SimDuration, TcpEvent};
use rand::SeedableRng;
use std::any::Any;
use std::net::{IpAddr, Ipv4Addr};

struct SshServer;
impl App for SshServer {
    fn start(&mut self, api: &mut HostApi) {
        api.tcp_listen(22);
    }
    fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
        if let AppEvent::Tcp(TcpEvent::Data(s)) = ev {
            let cmd = api.tcp_recv(s);
            if cmd == b"uptime\n" {
                api.tcp_send(s, b"up 42 days, load average: 0.02\n");
            }
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct Admin {
    vm_hit: IpAddr,
    start_delay: SimDuration,
    output: Vec<u8>,
}
impl App for Admin {
    fn start(&mut self, api: &mut HostApi) {
        api.set_timer(self.start_delay, 1);
    }
    fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
        match ev {
            AppEvent::Timer { token: 1 } => {
                api.tcp_connect(self.vm_hit, 22);
            }
            AppEvent::Tcp(TcpEvent::Connected(s)) => api.tcp_send(s, b"uptime\n"),
            AppEvent::Tcp(TcpEvent::Data(s)) => self.output.extend(api.tcp_recv(s)),
            _ => {}
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

const NAT_PUBLIC: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 1);
const LAPTOP_PRIVATE: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 50);
const TEREDO_SERVER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 201);
const TEREDO_RELAY: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 202);

/// Builds the world; `use_teredo` selects the admin's strategy.
fn run(use_teredo: bool) -> (u64, Vec<u8>, u64) {
    let mut topo = CloudTopology::new(17);
    let cloud = topo.add_cloud("ec2", CloudKind::Public);
    let vm = topo.launch_vm(cloud, "prod-vm", Flavor::Micro);

    // Teredo infrastructure on the public internet.
    let (srv, srv_link) = topo.attach_infrastructure(
        Box::new(TeredoServer::new(TEREDO_SERVER, hipcloud::net::LinkId(0))),
        IpAddr::V4(TEREDO_SERVER),
        0,
    );
    topo.sim.world.node_mut::<TeredoServer>(srv).expect("srv").set_link(srv_link);
    let (rly, rly_link) = topo.attach_infrastructure(
        Box::new(TeredoRelay::new(TEREDO_RELAY, hipcloud::net::LinkId(0))),
        IpAddr::V4(TEREDO_RELAY),
        0,
    );
    topo.sim.world.node_mut::<TeredoRelay>(rly).expect("rly").set_v4_link(rly_link);

    // The admin's laptop sits behind a full-cone NAT whose outside face
    // attaches to the internet core.
    let nat = Nat::new("home-nat", NAT_PUBLIC, NatKind::Cone);
    let (nat_node, nat_out_link) =
        topo.attach_infrastructure(Box::new(nat), IpAddr::V4(NAT_PUBLIC), 1);
    let laptop_host = Host::new("laptop");
    let laptop = topo.sim.world.add_node(Box::new(laptop_host));
    let inside_link = topo.sim.world.connect(
        Endpoint { node: laptop, iface: 0 },
        Endpoint { node: nat_node, iface: 0 },
        LinkParams::access(),
    );
    topo.sim.world.node_mut::<Nat>(nat_node).expect("nat").set_links(inside_link, nat_out_link);
    topo.sim
        .world
        .node_mut::<Host>(laptop)
        .expect("laptop")
        .core
        .add_iface(inside_link, vec![IpAddr::V4(LAPTOP_PRIVATE)]);

    // Identities.
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let id_admin = HostIdentity::generate_rsa(512, &mut rng);
    let id_vm = HostIdentity::generate_rsa(512, &mut rng);
    let (hit_admin, hit_vm) = (id_admin.hit(), id_vm.hit());

    // The admin's reachable locator depends on the strategy. With
    // Teredo, the address embeds the NAT's public mapping (cone NAT,
    // first mapping gets port 40000).
    let admin_locator: IpAddr = if use_teredo {
        IpAddr::V6(teredo_address(TEREDO_SERVER, NAT_PUBLIC, 40000))
    } else {
        IpAddr::V4(NAT_PUBLIC)
    };

    // The VM's locator as seen by the admin: with Teredo, both ends use
    // Teredo addresses so all HIP/ESP traffic rides inside UDP — the
    // only thing the NAT can translate.
    let vm_locator: IpAddr = if use_teredo {
        let IpAddr::V4(vm_v4) = vm.addr else { unreachable!() };
        IpAddr::V6(teredo_address(TEREDO_SERVER, vm_v4, TEREDO_PORT))
    } else {
        vm.addr
    };
    let mut shim_admin = HipShim::new(id_admin, HipConfig::default());
    shim_admin.add_peer(hit_vm, PeerInfo { locators: vec![vm_locator], via_rvs: None });
    let mut shim_vm = HipShim::new(id_vm, HipConfig::default());
    shim_vm.add_peer(hit_admin, PeerInfo { locators: vec![admin_locator], via_rvs: None });

    {
        let host = topo.sim.world.node_mut::<Host>(laptop).expect("laptop");
        if use_teredo {
            host.core.teredo = Some(TeredoClient::new(LAPTOP_PRIVATE, TEREDO_SERVER, TEREDO_RELAY));
        }
        host.set_shim(Box::new(shim_admin));
        host.add_app(Box::new(Admin {
            vm_hit: hit_vm.to_ip(),
            start_delay: SimDuration::from_secs(2),
            output: Vec::new(),
        }));
    }
    // With Teredo the VM must also be Teredo-capable so its ESP/HIP
    // replies ride UDP (the admin's locator is an IPv6 Teredo address).
    if use_teredo {
        let IpAddr::V4(vm_v4) = vm.addr else { unreachable!() };
        topo.host_mut(vm).core.teredo = Some(TeredoClient::new(vm_v4, TEREDO_SERVER, TEREDO_RELAY));
    }
    topo.host_mut(vm).set_shim(Box::new(shim_vm));
    topo.host_mut(vm).add_app(Box::new(SshServer));

    topo.run_for(SimDuration::from_secs(30));

    let output = {
        let host = topo.sim.world.node::<Host>(laptop).expect("laptop");
        host.app::<Admin>(0).expect("admin").output.clone()
    };
    let bex = topo.host(vm).shim::<HipShim>().expect("shim").stats.bex_completed;
    let nat_drops = topo.sim.world.node::<Nat>(nat_node).expect("nat").dropped;
    (bex, output, nat_drops)
}

fn main() {
    println!("attempt 1: native HIP straight through the home NAT");
    let (bex, output, drops) = run(false);
    println!("  base exchanges completed: {bex}");
    println!("  NAT drops (protocol 139/50 have no ports): {drops}");
    assert_eq!(bex, 0, "raw HIP cannot cross a NAT without helpers");
    assert!(output.is_empty());
    println!("  -> FAILED, as expected\n");

    println!("attempt 2: HIP over Teredo (the paper's approach)");
    let (bex, output, _) = run(true);
    println!("  base exchanges completed: {bex}");
    println!("  ssh-like session output: {:?}", String::from_utf8_lossy(&output));
    assert!(bex >= 1);
    assert!(output.starts_with(b"up 42 days"));
    println!("  -> SUCCESS: the admin reached the VM through NAT + Teredo, fully encrypted.");
}
