//! VM migration with HIP (§IV-C): a VM moves from the public cloud to a
//! private cloud — new subnet, new address — while a TCP connection
//! over HIP keeps running. The HIP UPDATE exchange (with return-
//! routability verification of the new locator) is what survives the
//! move; plain TCP to the old address would be dead.
//!
//! ```bash
//! cargo run --release --example vm_migration
//! ```

use hipcloud::cloud::{migrate_with_hip, CloudKind, CloudTopology, Flavor};
use hipcloud::hip::identity::HostIdentity;
use hipcloud::hip::{HipConfig, HipShim, PeerInfo};
use hipcloud::net::host::{App, AppEvent, HostApi};
use hipcloud::net::{SimDuration, SockId, TcpEvent};
use rand::SeedableRng;
use std::any::Any;
use std::net::IpAddr;

/// Sends a heartbeat every 250 ms over one long-lived connection and
/// counts the echoes.
struct Heartbeat {
    target: IpAddr,
    sock: Option<SockId>,
    echoes: u64,
}
impl App for Heartbeat {
    fn start(&mut self, api: &mut HostApi) {
        self.sock = api.tcp_connect(self.target, 7);
        api.set_timer(SimDuration::from_millis(250), 1);
    }
    fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
        match ev {
            AppEvent::Timer { token: 1 } => {
                if let Some(s) = self.sock {
                    api.tcp_send(s, b"beat");
                }
                api.set_timer(SimDuration::from_millis(250), 1);
            }
            AppEvent::Tcp(TcpEvent::Data(s)) => {
                let _ = api.tcp_recv(s);
                self.echoes += 1;
            }
            _ => {}
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct Echo;
impl App for Echo {
    fn start(&mut self, api: &mut HostApi) {
        api.tcp_listen(7);
    }
    fn on_event(&mut self, ev: AppEvent, api: &mut HostApi) {
        if let AppEvent::Tcp(TcpEvent::Data(s)) = ev {
            let d = api.tcp_recv(s);
            api.tcp_send(s, &d);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn main() {
    let mut topo = CloudTopology::new(4);
    let public = topo.add_cloud("ec2", CloudKind::Public);
    let private = topo.add_cloud("on-prem", CloudKind::Private);
    let mover = topo.launch_vm(public, "app-vm", Flavor::Micro);
    let peer = topo.launch_vm(private, "peer-vm", Flavor::Micro);

    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let id_mover = HostIdentity::generate_rsa(512, &mut rng);
    let id_peer = HostIdentity::generate_rsa(512, &mut rng);
    let (hit_mover, hit_peer) = (id_mover.hit(), id_peer.hit());

    let mut shim_m = HipShim::new(id_mover, HipConfig::default());
    shim_m.add_peer(hit_peer, PeerInfo { locators: vec![peer.addr], via_rvs: None });
    let mut shim_p = HipShim::new(id_peer, HipConfig::default());
    shim_p.add_peer(hit_mover, PeerInfo { locators: vec![mover.addr], via_rvs: None });
    topo.host_mut(mover).set_shim(Box::new(shim_m));
    topo.host_mut(peer).set_shim(Box::new(shim_p));

    let hb = topo.host_mut(mover).add_app(Box::new(Heartbeat {
        target: hit_peer.to_ip(),
        sock: None,
        echoes: 0,
    }));
    topo.host_mut(peer).add_app(Box::new(Echo));

    println!("app-vm starts in the PUBLIC cloud at {}", mover.addr);
    println!("identity (survives everything): {hit_mover}");
    topo.run_for(SimDuration::from_secs(5));
    let before = topo.host(mover).app::<Heartbeat>(hb).expect("app").echoes;
    println!("\nheartbeats echoed before migration: {before}");

    println!("\n>>> migrating app-vm to the PRIVATE cloud (200 ms downtime)...");
    let report = migrate_with_hip(&mut topo, mover, private, SimDuration::from_millis(200));
    println!("    locator changed: {} -> {}", report.old_addr, report.vm.addr);

    topo.run_for(SimDuration::from_secs(10));
    let after = topo.host(report.vm).app::<Heartbeat>(hb).expect("app").echoes;
    println!("\nheartbeats echoed after migration:  {after} (same TCP connection)");

    let peer_shim = topo.host(peer).shim::<HipShim>().expect("shim");
    println!(
        "peer's view of app-vm: locator {:?}, {} UPDATE exchanges verified",
        peer_shim.peer_locator(&hit_mover).expect("assoc"),
        peer_shim.stats.updates_completed
    );
    assert!(after > before, "connection survived the move");
    assert_eq!(peer_shim.peer_locator(&hit_mover), Some(report.vm.addr));
    println!("\nthe transport never noticed: identity stayed, only the locator moved.");
}
